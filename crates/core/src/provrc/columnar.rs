//! The high-throughput columnar ProvRC pipeline (`CompressOptions::fast`).
//!
//! Same pass structure — and pass-for-pass *identical output* — as the
//! row-of-structs reference implementation in [`super::range_encode`] /
//! [`super::relative`] (the `fast = false` ablation; parity is pinned by
//! the `provrc_fast_parity` property suite), but engineered for ingest
//! throughput:
//!
//! * **Columnar arena.** The working set lives struct-of-arrays: one
//!   `Vec<Interval>` per primary attribute, one `Vec<WCell>` per secondary
//!   attribute, double-buffered so a pass writes merged rows into reusable
//!   scratch columns. No per-row heap allocations (`WRow` carries two) and
//!   no pointer chasing inside comparators.
//! * **Bit-packed sort keys.** Every pass's conceptual sort key is a fixed
//!   vector of order-preserving `u64` words (sign-flipped `i64`s). A
//!   column-major stats sweep finds the words that actually vary (constant
//!   words and words row-wise equal to their predecessor — e.g. `hi == lo`
//!   for point intervals — are dropped; both eliminations provably
//!   preserve the comparator), then the surviving words are range-reduced
//!   and bit-packed. Real passes almost always fit 64 or 128 bits, so a
//!   comparison never touches a key buffer, let alone calls `cell_key` /
//!   `sec_key`.
//! * **Radix sort + sorted fast path.** Keys packed into a `u64` sort with
//!   a linear LSD radix sort (`(key, row id)` pairs, stable, hence
//!   deterministic); an O(n) pre-check skips sorting entirely when the
//!   pass order is already sorted — the common case for structured
//!   lineage, where each pass's output order nearly matches the next
//!   pass's key. Wider keys fall back to comparison sorts (parallel merge
//!   sort above `CompressOptions::parallel_threshold`).
//! * **Mask pruning.** A rel-mask bit is *live* only if some active row has
//!   a still-absolute cell in that column *and* a singleton target
//!   attribute — otherwise toggling it provably cannot change the pass's
//!   comparator or its conversions. Masks are projected onto the live bits
//!   and a projection that already ran on the current row set (no merges
//!   since) is skipped: the skipped pass is guaranteed to be a no-op, so
//!   the output stays exactly the ablation's.
//! * **Zero-copy no-op passes.** A pass that merges nothing does not
//!   rewrite the arena: row order is irrelevant to later passes (each
//!   re-sorts, and distinct rows never compare equal), so only the final
//!   pass's permutation is remembered and applied when the table is
//!   materialized.
//! * **Scoped-thread parallelism.** Above the size threshold, wide-key
//!   sorts run as a parallel merge sort and the merge scan is chunked on
//!   run boundaries across `std::thread::scope` workers. Both are
//!   deterministic: the key order is total on distinct rows, and scan
//!   chunks are aligned to group starts, so threaded results equal serial
//!   ones bit-for-bit.

use super::relative::{masks_for, WCell};
use super::CompressOptions;
use crate::interval::Interval;
use crate::table::{Cell, CompressedTable, LineageTable, Orientation};
use std::cmp::Ordering;

/// Order-preserving `i64 → u64` map: flips the sign bit so unsigned
/// comparison of the images matches signed comparison of the preimages.
#[inline]
fn ord64(v: i64) -> u64 {
    (v as u64) ^ (1 << 63)
}

/// Comparison-sort pairs below this row count; radix-sort at or above it.
const RADIX_MIN: usize = 1 << 13;

/// An in-progress merge run over the sorted permutation: `first` is the row
/// whose cells seed the output row, `hi` the accumulated end of the target
/// interval, `merged` whether ≥ 2 rows were absorbed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Run {
    first: u32,
    hi: i64,
    merged: bool,
}

/// Compress with the columnar pipeline. Output is identical to the
/// reference implementation (`CompressOptions { fast: false, .. }`).
pub(super) fn compress(
    table: &LineageTable,
    out_shape: &[usize],
    in_shape: &[usize],
    orientation: Orientation,
    opts: CompressOptions,
) -> CompressedTable {
    let (prim_arity, sec_arity) = match orientation {
        Orientation::Backward => (table.out_arity(), table.in_arity()),
        Orientation::Forward => (table.in_arity(), table.out_arity()),
    };
    let mut arena = Arena::build(table, orientation, prim_arity, sec_arity, opts);
    // Step 1: multi-attribute range encoding over secondary attributes,
    // last attribute first (paper: a_m, …, a_1).
    for k in (0..sec_arity).rev() {
        arena.secondary_pass(k);
    }
    // Step 2: relative transformation + range encoding over primary
    // attributes, last attribute first (paper: b_l, …, b_1). Attribute 0
    // runs last: its final pass fixes the output row order.
    for j in (0..prim_arity).rev() {
        arena.primary_passes(j, j == 0);
    }
    arena.into_table(orientation, out_shape, in_shape)
}

/// Running min/max of one key word plus whether it equals the previous
/// word of the same cell on every row (in which case it carries no extra
/// ordering information and is dropped from the packed key).
#[derive(Debug, Clone, Copy)]
struct WordStat {
    min: u64,
    max: u64,
    eq_prev: bool,
}

impl WordStat {
    const EMPTY: WordStat = WordStat {
        min: u64::MAX,
        max: 0,
        eq_prev: false,
    };

    #[inline]
    fn update(&mut self, v: u64) {
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }
}

/// One surviving key word in the packed representation.
#[derive(Debug, Clone, Copy)]
struct KeptWord {
    /// Index in the pass's conceptual word vector.
    word: usize,
    /// Bit width of `max − min`.
    width: u32,
    /// Subtracted before packing.
    min: u64,
}

/// How the current pass's keys are represented.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum KeyMode {
    /// All surviving words fit 64 packed bits.
    Packed64,
    /// All surviving words fit 128 packed bits.
    Packed128,
    /// Wider: full word vectors with prefix-accelerated comparisons.
    Wide,
}

/// Pack layout decided from the word stats.
struct Plan {
    mode: KeyMode,
    /// Packed bits of the surviving *target* words (they pack last, i.e.
    /// into the low bits, so the group prefix is a right shift away).
    target_bits: u32,
    /// Total packed bits (`Packed64` / `Packed128` only).
    total_bits: u32,
}

/// The four packed `cell_key` words of step 1 (see `range_encode`).
#[inline]
fn cell_key_words(cell: WCell) -> [u64; 4] {
    match cell {
        WCell::Abs(ivl) => [0, ord64(ivl.lo), ord64(ivl.hi), 0],
        WCell::Rel { anchor, delta } => [1, u64::from(anchor), ord64(delta.lo), ord64(delta.hi)],
    }
}

/// The four packed `sec_key` words of step 2 (see `relative`): tag 0 abs,
/// 1 abs-by-delta (point target), 2 abs kept absolute under an interval
/// target, 3 already relative.
#[inline]
fn sec_key_words(cell: WCell, want_rel: bool, prim_j: Interval) -> [u64; 4] {
    match cell {
        WCell::Abs(ivl) => {
            if want_rel {
                if prim_j.is_point() {
                    [1, ord64(ivl.lo - prim_j.lo), ord64(ivl.hi - prim_j.lo), 0]
                } else {
                    [2, ord64(ivl.lo), ord64(ivl.hi), 0]
                }
            } else {
                [0, ord64(ivl.lo), ord64(ivl.hi), 0]
            }
        }
        WCell::Rel { anchor, delta } => [3, u64::from(anchor), ord64(delta.lo), ord64(delta.hi)],
    }
}

/// The double-buffered columnar working set plus every pass's scratch
/// buffers, allocated once and reused across all `O(64 × prim_arity)`
/// mask passes of a compression.
struct Arena {
    prim_arity: usize,
    sec_arity: usize,
    /// Active row count; all column vectors have this length.
    n: usize,
    /// `prim[k][r]` is row `r`'s primary attribute `k`.
    prim: Vec<Vec<Interval>>,
    /// `sec[k][r]` is row `r`'s secondary attribute `k`.
    sec: Vec<Vec<WCell>>,
    prim_next: Vec<Vec<Interval>>,
    sec_next: Vec<Vec<WCell>>,
    /// Per-word stats of the current pass.
    stats: Vec<WordStat>,
    /// Surviving words of the current pass, in word order.
    kept: Vec<KeptWord>,
    /// `(packed key, row id)` pairs for the `Packed64` mode.
    pairs64: Vec<(u64, u32)>,
    pairs64_tmp: Vec<(u64, u32)>,
    /// `(packed key, row id)` pairs for the `Packed128` mode.
    pairs128: Vec<(u128, u32)>,
    pairs128_tmp: Vec<(u128, u32)>,
    /// Radix-sort bucket counters.
    counts: Vec<u32>,
    /// Full key words (`Wide` mode only), `w` per row.
    wide_keys: Vec<u64>,
    wide_sort: Vec<(u128, u32)>,
    wide_tmp: Vec<(u128, u32)>,
    runs: Vec<Run>,
    /// Sorted order of the most recent pass when that pass skipped
    /// materialization (zero merges); the arena columns are then still in
    /// the previous order and the final table emission applies this.
    last_perm: Vec<u32>,
    last_perm_valid: bool,
    /// Worker count for in-pass parallelism (1 = serial).
    threads: usize,
    /// Minimum active rows before a pass uses threads.
    par_threshold: usize,
}

impl Arena {
    /// Build the columnar working set directly from the raw relation:
    /// rows are visited through the sorted-unique permutation, folding
    /// normalization (set semantics) into the column build without
    /// materializing a normalized copy.
    fn build(
        table: &LineageTable,
        orientation: Orientation,
        prim_arity: usize,
        sec_arity: usize,
        opts: CompressOptions,
    ) -> Arena {
        let (prim_off, sec_off) = match orientation {
            Orientation::Backward => (0, table.out_arity()),
            Orientation::Forward => (table.out_arity(), 0),
        };
        // Normalization (sorted set semantics) folds into the column build.
        // Capture paths usually emit rows already strictly sorted — one
        // linear pre-check then skips the permutation sort entirely.
        let arity = table.arity();
        let raw = table.raw();
        let already_sorted_unique = raw
            .chunks_exact(arity)
            .zip(raw.chunks_exact(arity).skip(1))
            .all(|(x, y)| x < y);
        let fill = |rows: &mut dyn Iterator<Item = &[i64]>,
                    prim: &mut [Vec<Interval>],
                    sec: &mut [Vec<WCell>]| {
            for row in rows {
                for (k, col) in prim.iter_mut().enumerate() {
                    col.push(Interval::point(row[prim_off + k]));
                }
                for (k, col) in sec.iter_mut().enumerate() {
                    col.push(WCell::Abs(Interval::point(row[sec_off + k])));
                }
            }
        };
        let n;
        let mut prim;
        let mut sec;
        if already_sorted_unique {
            n = table.n_rows();
            prim = vec![Vec::with_capacity(n); prim_arity];
            sec = vec![Vec::with_capacity(n); sec_arity];
            fill(&mut table.rows(), &mut prim, &mut sec);
        } else {
            let order = table.sorted_unique_row_perm();
            n = order.len();
            prim = vec![Vec::with_capacity(n); prim_arity];
            sec = vec![Vec::with_capacity(n); sec_arity];
            fill(
                &mut order.iter().map(|&r| table.row(r as usize)),
                &mut prim,
                &mut sec,
            );
        }
        let threads = if opts.parallel {
            std::thread::available_parallelism()
                .map(|v| v.get())
                .unwrap_or(1)
        } else {
            1
        };
        Arena {
            prim_arity,
            sec_arity,
            n,
            prim,
            sec,
            prim_next: (0..prim_arity).map(|_| Vec::with_capacity(n)).collect(),
            sec_next: (0..sec_arity).map(|_| Vec::with_capacity(n)).collect(),
            stats: Vec::new(),
            kept: Vec::new(),
            pairs64: Vec::new(),
            pairs64_tmp: Vec::new(),
            pairs128: Vec::new(),
            pairs128_tmp: Vec::new(),
            counts: Vec::new(),
            wide_keys: Vec::new(),
            wide_sort: Vec::new(),
            wide_tmp: Vec::new(),
            runs: Vec::new(),
            last_perm: Vec::new(),
            last_perm_valid: false,
            threads,
            par_threshold: opts.parallel_threshold.max(1),
        }
    }

    /// Worker count for the current pass (1 below the size threshold).
    fn pass_chunks(&self) -> usize {
        if self.threads > 1 && self.n >= self.par_threshold {
            self.threads
        } else {
            1
        }
    }

    /// Decide the key representation from `self.stats`. Words are dropped
    /// when constant (`min == max`) or row-wise equal to their predecessor;
    /// neither can change any comparison: the first word on which two rows
    /// differ is always kept (a dropped word's value is determined by an
    /// earlier word). Survivors are range-reduced to `max − min` and
    /// packed most-significant-first, so packed-integer order equals
    /// word-vector order.
    fn build_plan(&mut self, w: usize, target_words: usize) -> Plan {
        self.kept.clear();
        let mut total: u32 = 0;
        let mut target: u32 = 0;
        for (i, s) in self.stats.iter().enumerate() {
            if s.max <= s.min || s.eq_prev {
                continue;
            }
            let width = 64 - (s.max - s.min).leading_zeros();
            self.kept.push(KeptWord {
                word: i,
                width,
                min: s.min,
            });
            total = total.saturating_add(width);
            if i >= w - target_words {
                target += width;
            }
        }
        let mode = if total <= 64 {
            KeyMode::Packed64
        } else if total <= 128 {
            KeyMode::Packed128
        } else {
            KeyMode::Wide
        };
        Plan {
            mode,
            target_bits: target,
            total_bits: total,
        }
    }

    /// Step-1 pass on secondary attribute `k`: sort by (all primary
    /// attributes, all secondary attributes except `k`, then `k`) and merge
    /// exactly-concatenating absolute runs on `k`.
    fn secondary_pass(&mut self, k: usize) {
        if self.n <= 1 {
            return;
        }
        let w = 2 * self.prim_arity + 4 * self.sec_arity;

        // Column-major stats sweep in pass word order.
        self.stats.clear();
        for col in &self.prim {
            push_prim_stats(&mut self.stats, col);
        }
        for i in sec_order(self.sec_arity, k) {
            push_cell_stats(&mut self.stats, &self.sec[i]);
        }
        let plan = self.build_plan(w, 4);

        let n = self.n;
        let (prim_arity, sec_arity) = (self.prim_arity, self.sec_arity);
        let chunks = self.pass_chunks();
        {
            let Self {
                prim,
                sec,
                kept,
                pairs64,
                pairs64_tmp,
                pairs128,
                pairs128_tmp,
                counts,
                wide_keys,
                wide_sort,
                wide_tmp,
                ..
            } = self;
            let source =
                |word: usize| word_source_secondary(prim, sec, prim_arity, sec_arity, word, k);
            match plan.mode {
                KeyMode::Packed64 => {
                    pack_columns_u64(pairs64, n, kept, plan.total_bits, source);
                    sort_pairs_u64(pairs64, pairs64_tmp, counts, plan.total_bits);
                }
                KeyMode::Packed128 => {
                    pack_columns_u128(pairs128, n, kept, plan.total_bits, source);
                    sort_pairs_u128(pairs128, pairs128_tmp, chunks);
                }
                KeyMode::Wide => {
                    wide_keys.clear();
                    wide_keys.reserve(n * w);
                    for r in 0..n {
                        for col in prim.iter() {
                            let ivl = col[r];
                            wide_keys.push(ord64(ivl.lo));
                            wide_keys.push(ord64(ivl.hi));
                        }
                        for i in sec_order(sec_arity, k) {
                            wide_keys.extend_from_slice(&cell_key_words(sec[i][r]));
                        }
                    }
                    sort_wide(wide_sort, wide_tmp, wide_keys, w, n, chunks);
                }
            }
        }

        let sec_k = &self.sec[k];
        let init_hi = |first: u32| match sec_k[first as usize] {
            WCell::Abs(ivl) => ivl.hi,
            // A relative cell never extends; the accumulator is unused.
            WCell::Rel { .. } => i64::MIN,
        };
        let extend =
            |first: u32, hi: i64, cur: u32| match (sec_k[first as usize], sec_k[cur as usize]) {
                (WCell::Abs(_), WCell::Abs(c)) if hi + 1 == c.lo => Some(c.hi),
                _ => None,
            };
        scan_by_mode(
            plan.mode,
            &self.pairs64,
            &self.pairs128,
            &self.wide_sort,
            &self.wide_keys,
            w,
            w - 4,
            plan.target_bits,
            &mut self.runs,
            chunks,
            init_hi,
            extend,
        );

        if self.runs.len() == self.n {
            // Zero merges: keep the arena untouched (order is irrelevant to
            // later passes) and remember the sorted order for emission.
            self.record_perm(plan.mode);
            return;
        }

        // Materialize the runs column-major into the scratch columns.
        let runs = &self.runs;
        for (col, next) in self.prim.iter().zip(self.prim_next.iter_mut()) {
            next.clear();
            next.extend(runs.iter().map(|run| col[run.first as usize]));
        }
        for (i, (col, next)) in self.sec.iter().zip(self.sec_next.iter_mut()).enumerate() {
            next.clear();
            if i == k {
                next.extend(runs.iter().map(|run| {
                    let cell = col[run.first as usize];
                    match cell {
                        WCell::Abs(ivl) if run.merged => WCell::Abs(Interval::new(ivl.lo, run.hi)),
                        _ => cell,
                    }
                }));
            } else {
                next.extend(runs.iter().map(|run| col[run.first as usize]));
            }
        }
        self.n = self.runs.len();
        std::mem::swap(&mut self.prim, &mut self.prim_next);
        std::mem::swap(&mut self.sec, &mut self.sec_next);
        self.last_perm_valid = false;
    }

    /// Bit `i` of the result is set iff toggling rel-mask bit `i` can
    /// change a pass on primary attribute `j`: some active row must hold a
    /// still-absolute cell in secondary column `i` *and* a singleton target
    /// attribute (otherwise the toggle flips key tags `0 ↔ 2` uniformly,
    /// which alters no comparison outcome and enables no conversion).
    fn live_mask(&self, j: usize) -> u64 {
        let pj = &self.prim[j];
        let mut live = 0u64;
        for (i, col) in self.sec.iter().enumerate().take(64) {
            let bit = col
                .iter()
                .zip(pj.iter())
                .any(|(c, p)| matches!(c, WCell::Abs(_)) && p.is_point());
            if bit {
                live |= 1u64 << i;
            }
        }
        live
    }

    /// Run the combo passes for primary attribute `j`, skipping masks whose
    /// live-bit projection already ran on the current row set with zero
    /// merges (a guaranteed no-op; see [`Self::live_mask`]).
    ///
    /// With `finalize_order` (the last primary attribute), the ablation's
    /// trailing all-absolute pass (mask 0) — whose sort fixes the output
    /// row order — is re-run if the last executed pass used a different
    /// comparator class. With the full ≤ 2^6 mask enumeration, projection
    /// 0 is provably the last *new* projection, so this never fires; it
    /// defends the row-order invariant against the > 6-attribute heuristic
    /// list, where singleton masks enumerate after the first all-absolute
    /// projection.
    fn primary_passes(&mut self, j: usize, finalize_order: bool) {
        let masks = masks_for(self.sec_arity);
        let mut live = self.live_mask(j);
        let mut tried: Vec<u64> = Vec::new();
        let mut last_proj: Option<u64> = None;
        for &mask in masks {
            if self.n <= 1 {
                break;
            }
            let proj = mask & live;
            if tried.contains(&proj) {
                continue;
            }
            let before = self.n;
            self.primary_pass(j, proj);
            last_proj = Some(proj);
            if self.n < before {
                // Merges (and their abs → rel conversions) changed the row
                // set: previously no-op projections may be productive now.
                tried.clear();
                live = self.live_mask(j);
            } else {
                tried.push(proj);
            }
        }
        if finalize_order && self.n > 1 && last_proj != Some(0) {
            // Merge-wise a guaranteed no-op (projection 0 is in `tried`),
            // but it re-establishes the ablation's final row order.
            self.primary_pass(j, 0);
        }
    }

    /// Step-2 pass on primary attribute `j` under rel-mask `mask`: sort by
    /// (other primary attributes, masked secondary keys, then `j`) and
    /// merge exactly-concatenating runs, converting masked absolute cells
    /// of point-anchored runs into relative ones.
    fn primary_pass(&mut self, j: usize, mask: u64) {
        if self.n <= 1 {
            return;
        }
        let w = 2 * (self.prim_arity - 1) + 4 * self.sec_arity + 2;

        self.stats.clear();
        for (p, col) in self.prim.iter().enumerate() {
            if p != j {
                push_prim_stats(&mut self.stats, col);
            }
        }
        {
            let pj = &self.prim[j];
            for (i, col) in self.sec.iter().enumerate() {
                let want_rel = mask & (1 << i) != 0;
                push_sec_stats(&mut self.stats, col, pj, want_rel);
            }
            push_prim_stats(&mut self.stats, pj);
        }
        let plan = self.build_plan(w, 2);

        let n = self.n;
        let prim_arity = self.prim_arity;
        let chunks = self.pass_chunks();
        {
            let Self {
                prim,
                sec,
                kept,
                pairs64,
                pairs64_tmp,
                pairs128,
                pairs128_tmp,
                counts,
                wide_keys,
                wide_sort,
                wide_tmp,
                ..
            } = self;
            let source = |word: usize| word_source_primary(prim, sec, prim_arity, word, j, mask);
            match plan.mode {
                KeyMode::Packed64 => {
                    pack_columns_u64(pairs64, n, kept, plan.total_bits, source);
                    sort_pairs_u64(pairs64, pairs64_tmp, counts, plan.total_bits);
                }
                KeyMode::Packed128 => {
                    pack_columns_u128(pairs128, n, kept, plan.total_bits, source);
                    sort_pairs_u128(pairs128, pairs128_tmp, chunks);
                }
                KeyMode::Wide => {
                    let pj_col = &prim[j];
                    wide_keys.clear();
                    wide_keys.reserve(n * w);
                    for r in 0..n {
                        for (p, col) in prim.iter().enumerate() {
                            if p != j {
                                let ivl = col[r];
                                wide_keys.push(ord64(ivl.lo));
                                wide_keys.push(ord64(ivl.hi));
                            }
                        }
                        let pj = pj_col[r];
                        for (i, col) in sec.iter().enumerate() {
                            let want_rel = mask & (1 << i) != 0;
                            wide_keys.extend_from_slice(&sec_key_words(col[r], want_rel, pj));
                        }
                        wide_keys.push(ord64(pj.lo));
                        wide_keys.push(ord64(pj.hi));
                    }
                    sort_wide(wide_sort, wide_tmp, wide_keys, w, n, chunks);
                }
            }
        }

        let prim_j = &self.prim[j];
        let init_hi = |first: u32| prim_j[first as usize].hi;
        let extend = |_first: u32, hi: i64, cur: u32| {
            let p = prim_j[cur as usize];
            (hi + 1 == p.lo).then_some(p.hi)
        };
        scan_by_mode(
            plan.mode,
            &self.pairs64,
            &self.pairs128,
            &self.wide_sort,
            &self.wide_keys,
            w,
            w - 2,
            plan.target_bits,
            &mut self.runs,
            chunks,
            init_hi,
            extend,
        );

        if self.runs.len() == self.n {
            self.record_perm(plan.mode);
            return;
        }

        let runs = &self.runs;
        for (p, (col, next)) in self.prim.iter().zip(self.prim_next.iter_mut()).enumerate() {
            next.clear();
            if p == j {
                next.extend(
                    runs.iter()
                        .map(|run| Interval::new(col[run.first as usize].lo, run.hi)),
                );
            } else {
                next.extend(runs.iter().map(|run| col[run.first as usize]));
            }
        }
        // Masked cells compared by delta only when the run's first target
        // attribute was a point; interval-anchored runs compared absolutely
        // and must stay absolute.
        let pj_col = &self.prim[j];
        for (i, (col, next)) in self.sec.iter().zip(self.sec_next.iter_mut()).enumerate() {
            next.clear();
            if mask & (1 << i) != 0 {
                next.extend(runs.iter().map(|run| {
                    let r = run.first as usize;
                    let cell = col[r];
                    let pj = pj_col[r];
                    match cell {
                        WCell::Abs(ivl) if run.merged && pj.is_point() => WCell::Rel {
                            anchor: j as u8,
                            delta: ivl.sub_point(pj.lo),
                        },
                        _ => cell,
                    }
                }));
            } else {
                next.extend(runs.iter().map(|run| col[run.first as usize]));
            }
        }
        self.n = self.runs.len();
        std::mem::swap(&mut self.prim, &mut self.prim_next);
        std::mem::swap(&mut self.sec, &mut self.sec_next);
        self.last_perm_valid = false;
    }

    /// Remember the most recent sort order after a zero-merge pass.
    fn record_perm(&mut self, mode: KeyMode) {
        self.last_perm.clear();
        match mode {
            KeyMode::Packed64 => self.last_perm.extend(self.pairs64.iter().map(|p| p.1)),
            KeyMode::Packed128 => self.last_perm.extend(self.pairs128.iter().map(|p| p.1)),
            KeyMode::Wide => self.last_perm.extend(self.wide_sort.iter().map(|p| p.1)),
        }
        self.last_perm_valid = true;
    }

    /// Materialize the final columns as a [`CompressedTable`], applying the
    /// pending permutation of a trailing zero-merge pass if any.
    fn into_table(
        self,
        orientation: Orientation,
        out_shape: &[usize],
        in_shape: &[usize],
    ) -> CompressedTable {
        let extents = super::extents_for(out_shape, in_shape, orientation);
        let perm: Option<&[u32]> = self.last_perm_valid.then_some(&self.last_perm[..]);
        let mut columns: Vec<Vec<Cell>> = Vec::with_capacity(self.prim_arity + self.sec_arity);
        for col in &self.prim {
            columns.push(match perm {
                Some(p) => p.iter().map(|&r| Cell::Abs(col[r as usize])).collect(),
                None => col.iter().map(|&ivl| Cell::Abs(ivl)).collect(),
            });
        }
        let to_cell = |c: WCell| match c {
            WCell::Abs(ivl) => Cell::Abs(ivl),
            WCell::Rel { anchor, delta } => Cell::Rel { anchor, delta },
        };
        for col in &self.sec {
            columns.push(match perm {
                Some(p) => p.iter().map(|&r| to_cell(col[r as usize])).collect(),
                None => col.iter().map(|&c| to_cell(c)).collect(),
            });
        }
        CompressedTable::from_columns(
            orientation,
            self.prim_arity,
            self.sec_arity,
            extents,
            columns,
        )
    }
}

/// Secondary-pass column order: every attribute except `k`, then `k`.
fn sec_order(sec_arity: usize, k: usize) -> impl Iterator<Item = usize> {
    (0..sec_arity).filter(move |&i| i != k).chain([k])
}

/// The per-row values of conceptual word `word` for the secondary pass
/// on `k` (word order: primary `(lo, hi)` pairs, then `cell_key` words of
/// every secondary attribute except `k`, then `k`'s).
fn word_source_secondary<'a>(
    prim: &'a [Vec<Interval>],
    sec: &'a [Vec<WCell>],
    prim_arity: usize,
    sec_arity: usize,
    word: usize,
    k: usize,
) -> WordFill<'a> {
    let pa2 = 2 * prim_arity;
    if word < pa2 {
        WordFill::Prim {
            col: &prim[word / 2],
            hi: word % 2 == 1,
        }
    } else {
        let slot = (word - pa2) / 4;
        let sub = (word - pa2) % 4;
        let col_idx = sec_order(sec_arity, k).nth(slot).expect("sec slot");
        WordFill::CellKey {
            col: &sec[col_idx],
            sub,
        }
    }
}

/// The per-row values of conceptual word `word` for the primary pass on
/// `j` under `mask` (word order: other primary `(lo, hi)` pairs, then
/// masked `sec_key` words of every secondary attribute, then `j`'s pair).
fn word_source_primary<'a>(
    prim: &'a [Vec<Interval>],
    sec: &'a [Vec<WCell>],
    prim_arity: usize,
    word: usize,
    j: usize,
    mask: u64,
) -> WordFill<'a> {
    let other = 2 * (prim_arity - 1);
    if word < other {
        let slot = word / 2;
        let col_idx = (0..prim_arity)
            .filter(|&p| p != j)
            .nth(slot)
            .expect("prim slot");
        WordFill::Prim {
            col: &prim[col_idx],
            hi: word % 2 == 1,
        }
    } else if word < other + 4 * sec.len() {
        let slot = (word - other) / 4;
        let sub = (word - other) % 4;
        WordFill::SecKey {
            col: &sec[slot],
            prim_j: &prim[j],
            want_rel: mask & (1 << slot) != 0,
            sub,
        }
    } else {
        WordFill::Prim {
            col: &prim[j],
            hi: (word - other - 4 * sec.len()) == 1,
        }
    }
}

/// Where a conceptual key word's per-row values come from.
enum WordFill<'a> {
    Prim {
        col: &'a [Interval],
        hi: bool,
    },
    /// Step-1 `cell_key` word `sub` of a secondary column.
    CellKey {
        col: &'a [WCell],
        sub: usize,
    },
    /// Step-2 `sec_key` word `sub` of a secondary column.
    SecKey {
        col: &'a [WCell],
        prim_j: &'a [Interval],
        want_rel: bool,
        sub: usize,
    },
}

impl WordFill<'_> {
    /// Feed each row's word value, in row order, to `f(row, value)`.
    #[inline]
    fn for_each(&self, mut f: impl FnMut(usize, u64)) {
        match self {
            WordFill::Prim { col, hi } => {
                if *hi {
                    for (r, ivl) in col.iter().enumerate() {
                        f(r, ord64(ivl.hi));
                    }
                } else {
                    for (r, ivl) in col.iter().enumerate() {
                        f(r, ord64(ivl.lo));
                    }
                }
            }
            WordFill::CellKey { col, sub } => {
                for (r, &cell) in col.iter().enumerate() {
                    f(r, cell_key_words(cell)[*sub]);
                }
            }
            WordFill::SecKey {
                col,
                prim_j,
                want_rel,
                sub,
            } => {
                for (r, (&cell, &pj)) in col.iter().zip(prim_j.iter()).enumerate() {
                    f(r, sec_key_words(cell, *want_rel, pj)[*sub]);
                }
            }
        }
    }
}

/// Stats for one primary column's `(lo, hi)` word pair.
fn push_prim_stats(stats: &mut Vec<WordStat>, col: &[Interval]) {
    let mut lo = WordStat::EMPTY;
    let mut hi = WordStat::EMPTY;
    let mut eq = true;
    for ivl in col {
        let a = ord64(ivl.lo);
        let b = ord64(ivl.hi);
        lo.update(a);
        hi.update(b);
        eq &= a == b;
    }
    hi.eq_prev = eq;
    stats.push(lo);
    stats.push(hi);
}

/// Stats for one secondary column's four key words (step-1 `cell_key`).
fn push_cell_stats(stats: &mut Vec<WordStat>, col: &[WCell]) {
    let mut s = [WordStat::EMPTY; 4];
    let mut eq21 = true;
    let mut eq32 = true;
    for &cell in col {
        let wds = cell_key_words(cell);
        for (st, v) in s.iter_mut().zip(wds) {
            st.update(v);
        }
        eq21 &= wds[2] == wds[1];
        eq32 &= wds[3] == wds[2];
    }
    s[2].eq_prev = eq21;
    s[3].eq_prev = eq32;
    stats.extend_from_slice(&s);
}

/// Stats for one secondary column's four masked key words (step-2
/// `sec_key`, which also reads the target attribute).
fn push_sec_stats(stats: &mut Vec<WordStat>, col: &[WCell], pj: &[Interval], want_rel: bool) {
    let mut s = [WordStat::EMPTY; 4];
    let mut eq21 = true;
    let mut eq32 = true;
    for (&cell, &p) in col.iter().zip(pj.iter()) {
        let wds = sec_key_words(cell, want_rel, p);
        for (st, v) in s.iter_mut().zip(wds) {
            st.update(v);
        }
        eq21 &= wds[2] == wds[1];
        eq32 &= wds[3] == wds[2];
    }
    s[2].eq_prev = eq21;
    s[3].eq_prev = eq32;
    stats.extend_from_slice(&s);
}

/// Build `(packed u64 key, row id)` pairs by OR-folding each kept word's
/// range-reduced value at its fixed bit offset, column-major.
fn pack_columns_u64<'a>(
    pairs: &mut Vec<(u64, u32)>,
    n: usize,
    kept: &[KeptWord],
    total_bits: u32,
    source: impl Fn(usize) -> WordFill<'a>,
) {
    pairs.clear();
    pairs.extend((0..n).map(|r| (0u64, r as u32)));
    let mut off = total_bits;
    for kw in kept {
        off -= kw.width;
        let min = kw.min;
        source(kw.word).for_each(|r, v| {
            pairs[r].0 |= (v - min) << off;
        });
    }
}

/// `u128` variant of [`pack_columns_u64`].
fn pack_columns_u128<'a>(
    pairs: &mut Vec<(u128, u32)>,
    n: usize,
    kept: &[KeptWord],
    total_bits: u32,
    source: impl Fn(usize) -> WordFill<'a>,
) {
    pairs.clear();
    pairs.extend((0..n).map(|r| (0u128, r as u32)));
    let mut off = total_bits;
    for kw in kept {
        off -= kw.width;
        let min = kw.min;
        source(kw.word).for_each(|r, v| {
            pairs[r].0 |= u128::from(v - min) << off;
        });
    }
}

/// Sort `(u64 key, row id)` pairs: O(n) sorted pre-check, then a stable
/// LSD radix sort over the used bits (or a comparison sort for small
/// inputs). Keys are distinct across distinct rows, so every strategy
/// yields the same order.
fn sort_pairs_u64(
    pairs: &mut Vec<(u64, u32)>,
    tmp: &mut Vec<(u64, u32)>,
    counts: &mut Vec<u32>,
    total_bits: u32,
) {
    if pairs.windows(2).all(|w| w[0].0 <= w[1].0) {
        return;
    }
    if pairs.len() < RADIX_MIN {
        pairs.sort_unstable_by_key(|p| p.0);
        return;
    }
    // Digit size chosen to minimize passes with ≤ 2^18 buckets.
    let passes = total_bits.div_ceil(18).max(1);
    let digit = total_bits.div_ceil(passes);
    let buckets = 1usize << digit;
    let mask = (buckets - 1) as u64;
    counts.clear();
    counts.resize(buckets, 0);
    tmp.clear();
    tmp.resize(pairs.len(), (0, 0));
    let mut shift = 0u32;
    while shift < total_bits {
        counts.fill(0);
        for &(k, _) in pairs.iter() {
            counts[((k >> shift) & mask) as usize] += 1;
        }
        let mut sum = 0u32;
        for c in counts.iter_mut() {
            let v = *c;
            *c = sum;
            sum += v;
        }
        for &p in pairs.iter() {
            let b = ((p.0 >> shift) & mask) as usize;
            tmp[counts[b] as usize] = p;
            counts[b] += 1;
        }
        std::mem::swap(pairs, tmp);
        shift += digit;
    }
}

/// Sort `(u128 key, row id)` pairs: sorted pre-check, then a comparison
/// sort (parallel merge sort when `n_chunks > 1`).
fn sort_pairs_u128(pairs: &mut [(u128, u32)], scratch: &mut Vec<(u128, u32)>, n_chunks: usize) {
    if pairs.windows(2).all(|w| w[0].0 <= w[1].0) {
        return;
    }
    par_merge_sort(pairs, scratch, n_chunks, |a, b| a.0.cmp(&b.0));
}

/// Build and sort the `(u128 prefix, row id)` entries of the `Wide` mode:
/// the first two key words ride inline, remaining words break prefix ties
/// via one contiguous slice compare.
fn sort_wide(
    sort: &mut Vec<(u128, u32)>,
    scratch: &mut Vec<(u128, u32)>,
    keys: &[u64],
    w: usize,
    n: usize,
    n_chunks: usize,
) {
    sort.clear();
    sort.reserve(n);
    for r in 0..n {
        let base = r * w;
        let prefix = (u128::from(keys[base]) << 64) | u128::from(keys[base + 1]);
        sort.push((prefix, r as u32));
    }
    let cmp = |a: &(u128, u32), b: &(u128, u32)| wide_cmp(a, b, keys, w);
    if sort
        .windows(2)
        .all(|s| cmp(&s[0], &s[1]) != Ordering::Greater)
    {
        return;
    }
    par_merge_sort(sort, scratch, n_chunks, cmp);
}

/// Full wide-key comparison: inline `u128` prefix first, remaining words
/// via one contiguous slice compare.
#[inline]
fn wide_cmp(a: &(u128, u32), b: &(u128, u32), keys: &[u64], w: usize) -> Ordering {
    a.0.cmp(&b.0).then_with(|| {
        let ia = a.1 as usize * w;
        let ib = b.1 as usize * w;
        keys[ia + 2..ia + w].cmp(&keys[ib + 2..ib + w])
    })
}

/// Comparison sort with optional scoped-thread parallel merge rounds.
/// With `n_chunks > 1`, chunks sort concurrently and merge in rounds of
/// pairwise (also concurrent) merges. Deterministic for total orders.
fn par_merge_sort<T: Copy + Send + Sync + Default>(
    items: &mut [T],
    scratch: &mut Vec<T>,
    n_chunks: usize,
    cmp: impl Fn(&T, &T) -> Ordering + Send + Sync + Copy,
) {
    let n = items.len();
    if n_chunks <= 1 || n < 2 * n_chunks {
        items.sort_unstable_by(cmp);
        return;
    }
    let chunk = n.div_ceil(n_chunks);
    std::thread::scope(|s| {
        for part in items.chunks_mut(chunk) {
            s.spawn(move || part.sort_unstable_by(cmp));
        }
    });
    scratch.clear();
    scratch.resize(n, T::default());
    let mut width = chunk;
    let mut in_items = true;
    while width < n {
        if in_items {
            merge_round(items, scratch, width, cmp);
        } else {
            merge_round(scratch, items, width, cmp);
        }
        in_items = !in_items;
        width *= 2;
    }
    if !in_items {
        items.copy_from_slice(scratch);
    }
}

/// One merge-sort round: merge each adjacent pair of width-`width` sorted
/// runs of `src` into `dst`, pairs in parallel.
fn merge_round<T: Copy + Send + Sync>(
    src: &[T],
    dst: &mut [T],
    width: usize,
    cmp: impl Fn(&T, &T) -> Ordering + Send + Sync + Copy,
) {
    let n = src.len();
    std::thread::scope(|s| {
        let mut dst_rest = dst;
        let mut start = 0;
        while start < n {
            let end = (start + 2 * width).min(n);
            let (d, rest) = dst_rest.split_at_mut(end - start);
            dst_rest = rest;
            let seg = &src[start..end];
            s.spawn(move || {
                let mid = width.min(seg.len());
                merge_into(&seg[..mid], &seg[mid..], d, cmp);
            });
            start = end;
        }
    });
}

/// Standard two-way merge of sorted `a` and `b` into `dst`.
fn merge_into<T: Copy>(a: &[T], b: &[T], dst: &mut [T], cmp: impl Fn(&T, &T) -> Ordering) {
    debug_assert_eq!(a.len() + b.len(), dst.len());
    let (mut i, mut j) = (0, 0);
    for slot in dst.iter_mut() {
        let take_a = j >= b.len() || (i < a.len() && cmp(&a[i], &b[j]) != Ordering::Greater);
        if take_a {
            *slot = a[i];
            i += 1;
        } else {
            *slot = b[j];
            j += 1;
        }
    }
}

/// Dispatch the merge scan over the sorted representation of the pass.
#[allow(clippy::too_many_arguments)]
fn scan_by_mode<I, E>(
    mode: KeyMode,
    pairs64: &[(u64, u32)],
    pairs128: &[(u128, u32)],
    wide_sort: &[(u128, u32)],
    wide_keys: &[u64],
    w: usize,
    group_w: usize,
    target_bits: u32,
    runs: &mut Vec<Run>,
    n_chunks: usize,
    init_hi: I,
    extend: E,
) where
    I: Fn(u32) -> i64 + Sync,
    E: Fn(u32, i64, u32) -> Option<i64> + Sync,
{
    match mode {
        KeyMode::Packed64 => {
            let tb = target_bits;
            let same = |t: usize| tb >= 64 || pairs64[t - 1].0 >> tb == pairs64[t].0 >> tb;
            let id = |t: usize| pairs64[t].1;
            scan_runs(pairs64.len(), &id, &same, runs, n_chunks, &init_hi, &extend);
        }
        KeyMode::Packed128 => {
            let tb = target_bits;
            let same = |t: usize| tb >= 128 || pairs128[t - 1].0 >> tb == pairs128[t].0 >> tb;
            let id = |t: usize| pairs128[t].1;
            scan_runs(
                pairs128.len(),
                &id,
                &same,
                runs,
                n_chunks,
                &init_hi,
                &extend,
            );
        }
        KeyMode::Wide => {
            // Group prefix: the leading `group_w` words (always ≥ 2, so the
            // inline prefix is entirely group words).
            let same = |t: usize| {
                let (pa, ra) = wide_sort[t - 1];
                let (pb, rb) = wide_sort[t];
                pa == pb && {
                    let ia = ra as usize * w;
                    let ib = rb as usize * w;
                    wide_keys[ia + 2..ia + group_w] == wide_keys[ib + 2..ib + group_w]
                }
            };
            let id = |t: usize| wide_sort[t].1;
            scan_runs(
                wide_sort.len(),
                &id,
                &same,
                runs,
                n_chunks,
                &init_hi,
                &extend,
            );
        }
    }
}

/// Detect merge runs over the sorted permutation.
///
/// `id(t)` is the row at sorted position `t`; `same_group(t)` whether
/// positions `t - 1` and `t` share a group prefix. A run extends while the
/// group holds and `extend(first, hi, cur)` grants a new accumulated `hi`;
/// `init_hi` seeds the accumulator from a run's first row.
///
/// With `n_chunks > 1` the scan splits at *group boundaries* (a run can
/// never cross one), each worker emitting its local runs; concatenated in
/// order they equal the serial scan exactly.
fn scan_runs<S, G, I, E>(
    n: usize,
    id: &S,
    same_group: &G,
    runs: &mut Vec<Run>,
    n_chunks: usize,
    init_hi: &I,
    extend: &E,
) where
    S: Fn(usize) -> u32 + Sync,
    G: Fn(usize) -> bool + Sync,
    I: Fn(u32) -> i64 + Sync,
    E: Fn(u32, i64, u32) -> Option<i64> + Sync,
{
    runs.clear();
    if n == 0 {
        return;
    }
    let scan_range = |lo: usize, hi: usize, out: &mut Vec<Run>| {
        let mut run = Run {
            first: id(lo),
            hi: init_hi(id(lo)),
            merged: false,
        };
        for t in lo + 1..hi {
            let row = id(t);
            let extended = if same_group(t) {
                extend(run.first, run.hi, row)
            } else {
                None
            };
            match extended {
                Some(new_hi) => {
                    run.hi = new_hi;
                    run.merged = true;
                }
                None => {
                    out.push(run);
                    run = Run {
                        first: row,
                        hi: init_hi(row),
                        merged: false,
                    };
                }
            }
        }
        out.push(run);
    };

    if n_chunks <= 1 || n < 4 * n_chunks {
        scan_range(0, n, runs);
        return;
    }
    // Chunk boundaries advanced to the next group start.
    let target = n.div_ceil(n_chunks);
    let mut bounds = vec![0usize];
    let mut b = target;
    while b < n {
        while b < n && same_group(b) {
            b += 1;
        }
        if b >= n {
            break;
        }
        bounds.push(b);
        b += target;
    }
    bounds.push(n);
    std::thread::scope(|s| {
        let handles: Vec<_> = bounds
            .windows(2)
            .map(|win| {
                let (lo, hi) = (win[0], win[1]);
                let scan_range = &scan_range;
                s.spawn(move || {
                    let mut local = Vec::new();
                    scan_range(lo, hi, &mut local);
                    local
                })
            })
            .collect();
        for h in handles {
            runs.extend(h.join().expect("scan worker"));
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic pseudo-random values.
    fn lcg(n: usize, modulus: u64) -> Vec<u64> {
        let mut state = 0x2545F4914F6CDD1Du64;
        (0..n)
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                (state >> 33) % modulus
            })
            .collect()
    }

    #[test]
    fn radix_sort_matches_comparison_sort() {
        for n in [1usize, 5, 300, 9000] {
            for bits in [13u32, 34, 63] {
                let modulus = 1u64 << bits;
                let vals = lcg(n, modulus);
                let mut pairs: Vec<(u64, u32)> = vals
                    .iter()
                    .enumerate()
                    .map(|(i, &v)| (v, i as u32))
                    .collect();
                let mut expect = pairs.clone();
                // Stable radix keeps index order for equal keys, matching
                // the (key, index) comparison.
                expect.sort_unstable_by_key(|p| (p.0, p.1));
                sort_pairs_u64(&mut pairs, &mut Vec::new(), &mut Vec::new(), bits);
                if n >= RADIX_MIN {
                    assert_eq!(pairs, expect, "n={n} bits={bits}");
                } else {
                    // Comparison path: only key order is guaranteed (key
                    // ties cannot occur in the real pipeline).
                    let keys: Vec<u64> = pairs.iter().map(|p| p.0).collect();
                    let expect_keys: Vec<u64> = expect.iter().map(|p| p.0).collect();
                    assert_eq!(keys, expect_keys, "n={n} bits={bits}");
                }
            }
        }
    }

    #[test]
    fn sorted_input_short_circuits() {
        let mut pairs: Vec<(u64, u32)> = (0..100u32).map(|i| (u64::from(i) * 3, i)).collect();
        let expect = pairs.clone();
        sort_pairs_u64(&mut pairs, &mut Vec::new(), &mut Vec::new(), 9);
        assert_eq!(pairs, expect);
    }

    #[test]
    fn parallel_merge_sort_matches_serial() {
        for modulus in [4u64, 1 << 40] {
            let n = 257;
            let vals = lcg(n, modulus);
            // Unique keys (pipeline invariant): tie-break by index.
            let build = || -> Vec<(u128, u32)> {
                vals.iter()
                    .enumerate()
                    .map(|(i, &v)| ((u128::from(v) << 32) | i as u128, i as u32))
                    .collect()
            };
            let mut expect = build();
            expect.sort_unstable_by_key(|a| a.0);
            for chunks in [1, 2, 3, 4, 7] {
                let mut items = build();
                par_merge_sort(&mut items, &mut Vec::new(), chunks, |a, b| a.0.cmp(&b.0));
                assert_eq!(items, expect, "chunks = {chunks}, modulus = {modulus}");
            }
        }
    }

    #[test]
    fn chunked_scan_matches_serial() {
        // 5 groups of 40 consecutive values each: one run per group.
        let n = 200usize;
        let pairs: Vec<(u64, u32)> = (0..n as u64)
            .map(|r| (((r / 40) << 8) | (r % 40), r as u32))
            .collect();
        let tb = 8u32;
        let same = |t: usize| pairs[t - 1].0 >> tb == pairs[t].0 >> tb;
        let id = |t: usize| pairs[t].1;
        let los: Vec<i64> = (0..n as i64).map(|r| r % 40).collect();
        let init = |first: u32| los[first as usize];
        let extend = |_first: u32, hi: i64, cur: u32| {
            (hi + 1 == los[cur as usize]).then_some(los[cur as usize])
        };
        let mut serial = Vec::new();
        scan_runs(n, &id, &same, &mut serial, 1, &init, &extend);
        assert_eq!(serial.len(), 5, "one run per group");
        assert!(serial.iter().all(|r| r.merged));
        for chunks in [2, 3, 5, 16] {
            let mut par = Vec::new();
            scan_runs(n, &id, &same, &mut par, chunks, &init, &extend);
            assert_eq!(par, serial, "chunks = {chunks}");
        }
    }

    #[test]
    fn ord64_preserves_order() {
        let vals = [i64::MIN, -5, -1, 0, 1, 7, i64::MAX];
        for pair in vals.windows(2) {
            assert!(ord64(pair[0]) < ord64(pair[1]));
        }
    }
}
