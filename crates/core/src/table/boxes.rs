//! Tables of interval boxes.
//!
//! A [`BoxTable`] is a union of axis-aligned integer boxes (one box per
//! row, one [`Interval`] per attribute). Queries are encoded as box tables
//! (the paper's `Q'`, §V.B), and every θ-join hop produces one.

use crate::interval::Interval;

/// A union of interval boxes over `arity` attributes.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct BoxTable {
    arity: usize,
    /// Flat row-major storage; row length is `arity`.
    data: Vec<Interval>,
}

impl BoxTable {
    /// Empty table.
    pub fn new(arity: usize) -> Self {
        assert!(arity > 0);
        Self {
            arity,
            data: Vec::new(),
        }
    }

    /// Build from explicit boxes (tests and examples).
    pub fn from_boxes(arity: usize, boxes: &[&[Interval]]) -> Self {
        let mut t = Self::new(arity);
        for b in boxes {
            t.push_box(b);
        }
        t
    }

    /// Encode a set of concrete cells into a compact union of boxes using
    /// the same multi-attribute range-encoding idea ProvRC uses (§V.B:
    /// "The query Q′ is encoded from Q in the same format as the compressed
    /// relational lineage tables with multi-attribute range encoding").
    pub fn from_cells(arity: usize, cells: &[Vec<i64>]) -> Self {
        let mut t = Self::new(arity);
        let mut sorted: Vec<&Vec<i64>> = cells.iter().collect();
        sorted.sort_unstable();
        sorted.dedup();
        for cell in sorted {
            debug_assert_eq!(cell.len(), arity);
            t.data.extend(cell.iter().map(|&v| Interval::point(v)));
        }
        t.merge();
        t
    }

    /// Number of attributes per box.
    #[inline]
    pub fn arity(&self) -> usize {
        self.arity
    }

    /// Number of boxes.
    #[inline]
    pub fn n_boxes(&self) -> usize {
        self.data.len() / self.arity
    }

    /// Whether the table covers no cells.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Append one box.
    #[inline]
    pub fn push_box(&mut self, b: &[Interval]) {
        debug_assert_eq!(b.len(), self.arity);
        self.data.extend_from_slice(b);
    }

    /// Append every box of `other` (same arity), preserving order. Used by
    /// the parallel query engine to concatenate per-thread partial results.
    pub fn append(&mut self, other: &BoxTable) {
        debug_assert_eq!(self.arity, other.arity);
        self.data.extend_from_slice(&other.data);
    }

    /// Box `i` as a slice.
    #[inline]
    pub fn row(&self, i: usize) -> &[Interval] {
        &self.data[i * self.arity..(i + 1) * self.arity]
    }

    /// Iterate boxes.
    pub fn boxes(&self) -> impl Iterator<Item = &[Interval]> {
        self.data.chunks_exact(self.arity)
    }

    /// Whether a concrete cell is covered by any box.
    pub fn contains_cell(&self, cell: &[i64]) -> bool {
        debug_assert_eq!(cell.len(), self.arity);
        self.boxes()
            .any(|b| b.iter().zip(cell).all(|(ivl, &v)| ivl.contains(v)))
    }

    /// Total number of covered cells, counting overlap regions once.
    ///
    /// Exact but potentially expensive; intended for tests and reporting.
    pub fn cell_set(&self) -> std::collections::BTreeSet<Vec<i64>> {
        let mut out = std::collections::BTreeSet::new();
        for b in self.boxes() {
            let mut cursor: Vec<i64> = b.iter().map(|ivl| ivl.lo).collect();
            'outer: loop {
                out.insert(cursor.clone());
                for k in (0..self.arity).rev() {
                    if cursor[k] < b[k].hi {
                        cursor[k] += 1;
                        for (j, c) in cursor.iter_mut().enumerate().skip(k + 1) {
                            *c = b[j].lo;
                        }
                        continue 'outer;
                    }
                }
                break;
            }
        }
        out
    }

    /// Upper bound on covered cells (sum of box volumes; overlaps counted
    /// multiple times). Cheap, used by the query planner for reporting.
    pub fn volume(&self) -> u128 {
        self.boxes()
            .map(|b| b.iter().map(|ivl| u128::from(ivl.len())).product::<u128>())
            .sum()
    }

    /// The geometric intersection with another box union (same arity):
    /// every box of `self` clipped against every box of `other`, empty
    /// clips dropped. The result covers exactly `cells(self) ∩
    /// cells(other)` (overlapping clips may repeat cells across boxes —
    /// a union, like every [`BoxTable`]). Used by the query planner to
    /// restrict a frontier to a semi-join backimage.
    pub fn intersect(&self, other: &BoxTable) -> BoxTable {
        debug_assert_eq!(self.arity, other.arity);
        let mut out = BoxTable::new(self.arity);
        let mut clip: Vec<Interval> = Vec::with_capacity(self.arity);
        for a in self.boxes() {
            for b in other.boxes() {
                clip.clear();
                if a.iter()
                    .zip(b)
                    .all(|(x, y)| x.intersect(y).map(|i| clip.push(i)).is_some())
                {
                    out.push_box(&clip);
                }
            }
        }
        out
    }

    /// The paper's row-reduction "merge" step (§V.B.3): repeatedly unite
    /// boxes that are identical on all attributes but one, where that one
    /// attribute's intervals overlap or abut. Also drops duplicate boxes
    /// and boxes fully contained in another identical-on-other-attrs box.
    pub fn merge(&mut self) {
        if self.n_boxes() <= 1 {
            return;
        }
        loop {
            let before = self.n_boxes();
            for target in 0..self.arity {
                self.merge_pass(target);
            }
            if self.n_boxes() == before {
                break;
            }
        }
    }

    /// One merge pass over attribute `target`.
    fn merge_pass(&mut self, target: usize) {
        let arity = self.arity;
        let n = self.n_boxes();
        if n <= 1 {
            return;
        }
        // Sort box indices by (other attrs, target.lo, target.hi).
        let mut order: Vec<u32> = (0..n as u32).collect();
        let data = &self.data;
        let key_cmp = |&x: &u32, &y: &u32| {
            let bx = &data[x as usize * arity..(x as usize + 1) * arity];
            let by = &data[y as usize * arity..(y as usize + 1) * arity];
            for k in 0..arity {
                if k == target {
                    continue;
                }
                match bx[k].cmp(&by[k]) {
                    std::cmp::Ordering::Equal => {}
                    other => return other,
                }
            }
            bx[target].cmp(&by[target])
        };
        order.sort_unstable_by(key_cmp);

        let mut out: Vec<Interval> = Vec::with_capacity(self.data.len());
        let mut cur: Option<Vec<Interval>> = None;
        for &idx in &order {
            let b = &data[idx as usize * arity..(idx as usize + 1) * arity];
            match cur {
                None => cur = Some(b.to_vec()),
                Some(ref mut c) => {
                    let others_equal = (0..arity).all(|k| k == target || c[k] == b[k]);
                    if others_equal && c[target].mergeable(&b[target]) {
                        c[target] = c[target].merge(&b[target]);
                    } else {
                        out.extend_from_slice(c);
                        *c = b.to_vec();
                    }
                }
            }
        }
        if let Some(c) = cur {
            out.extend_from_slice(&c);
        }
        self.data = out;
    }

    /// Convert each box's covered cells into explicit rows (tests only).
    pub fn enumerate_cells(&self) -> Vec<Vec<i64>> {
        self.cell_set().into_iter().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ivl(lo: i64, hi: i64) -> Interval {
        Interval::new(lo, hi)
    }

    #[test]
    fn from_cells_merges_runs() {
        // range({1,2,3,4,9,12,13,14,15}) = {[1,4],[9],[12,15]} — paper §IV.A.
        let cells: Vec<Vec<i64>> = [1, 2, 3, 4, 9, 12, 13, 14, 15]
            .iter()
            .map(|&v| vec![v])
            .collect();
        let t = BoxTable::from_cells(1, &cells);
        assert_eq!(t.n_boxes(), 3);
        let boxes: Vec<&[Interval]> = t.boxes().collect();
        assert_eq!(boxes[0], &[ivl(1, 4)]);
        assert_eq!(boxes[1], &[ivl(9, 9)]);
        assert_eq!(boxes[2], &[ivl(12, 15)]);
    }

    #[test]
    fn from_cells_2d_rectangle() {
        let mut cells = Vec::new();
        for i in 0..4 {
            for j in 10..13 {
                cells.push(vec![i, j]);
            }
        }
        let t = BoxTable::from_cells(2, &cells);
        assert_eq!(t.n_boxes(), 1);
        assert_eq!(t.row(0), &[ivl(0, 3), ivl(10, 12)]);
    }

    #[test]
    fn merge_needs_multiple_passes() {
        // Four quadrant boxes forming one square merge only after two passes.
        let t0 = BoxTable::from_boxes(
            2,
            &[
                &[ivl(0, 1), ivl(0, 1)],
                &[ivl(0, 1), ivl(2, 3)],
                &[ivl(2, 3), ivl(0, 1)],
                &[ivl(2, 3), ivl(2, 3)],
            ],
        );
        let mut t = t0.clone();
        t.merge();
        assert_eq!(t.n_boxes(), 1);
        assert_eq!(t.row(0), &[ivl(0, 3), ivl(0, 3)]);
        assert_eq!(t.cell_set(), t0.cell_set());
    }

    #[test]
    fn merge_unites_overlaps() {
        let mut t = BoxTable::from_boxes(1, &[&[ivl(0, 5)], &[ivl(3, 9)], &[ivl(9, 9)]]);
        t.merge();
        assert_eq!(t.n_boxes(), 1);
        assert_eq!(t.row(0), &[ivl(0, 9)]);
    }

    #[test]
    fn contains_and_volume() {
        let t = BoxTable::from_boxes(2, &[&[ivl(0, 1), ivl(0, 1)], &[ivl(5, 5), ivl(5, 6)]]);
        assert!(t.contains_cell(&[1, 0]));
        assert!(t.contains_cell(&[5, 6]));
        assert!(!t.contains_cell(&[2, 2]));
        assert_eq!(t.volume(), 4 + 2);
        assert_eq!(t.cell_set().len(), 6);
    }

    #[test]
    fn from_cells_dedups() {
        let cells = vec![vec![3i64], vec![3], vec![3]];
        let t = BoxTable::from_cells(1, &cells);
        assert_eq!(t.n_boxes(), 1);
        assert_eq!(t.volume(), 1);
    }
}
