//! The DSLog public API (paper §III.A): defining tracked arrays, capturing
//! lineage, registering operations, and issuing `prov_query` calls.

use crate::error::{DslogError, Result};
use crate::provrc::CompressOptions;
use crate::query::{QueryOptions, QueryStats};
use crate::reuse::{ArgValue, CompositePolicy, Mapping, ReuseHit, ReuseManager, ReuseStats};
use crate::service::MaintenancePolicy;
use crate::storage::{Materialize, StorageManager};
use crate::table::{BoxTable, LineageTable};

/// A lineage capture method for one (input array, output array) pair.
///
/// The paper's capture object enumerates, per output cell, the contributing
/// input cells; any such enumeration materializes as a [`LineageTable`], so
/// the trait asks directly for the full relation. DSLog is agnostic to how
/// it was produced (§II.A).
pub trait Capture {
    /// Produce the lineage relation `R(out_attrs, in_attrs)` for the given
    /// array shapes.
    fn capture(&self, in_shape: &[usize], out_shape: &[usize]) -> LineageTable;
}

/// A capture backed by a precomputed table (e.g. from the array engine's
/// tracked-cell execution).
#[derive(Debug, Clone)]
pub struct TableCapture {
    table: LineageTable,
}

impl TableCapture {
    /// Wrap a precomputed lineage table.
    pub fn new(table: LineageTable) -> Self {
        Self { table }
    }
}

impl Capture for TableCapture {
    fn capture(&self, _in_shape: &[usize], _out_shape: &[usize]) -> LineageTable {
        self.table.clone()
    }
}

/// A capture backed by a closure over the shapes.
pub struct FnCapture<F>(pub F);

impl<F> Capture for FnCapture<F>
where
    F: Fn(&[usize], &[usize]) -> LineageTable,
{
    fn capture(&self, in_shape: &[usize], out_shape: &[usize]) -> LineageTable {
        (self.0)(in_shape, out_shape)
    }
}

/// How a `register_operation` call was satisfied.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RegistrationOutcome {
    /// Lineage was freshly captured and compressed.
    Captured,
    /// Lineage came from a stored signature without invoking capture.
    Reused(ReuseHit),
}

/// Result of a `prov_query`.
#[derive(Debug, Clone)]
pub struct QueryResult {
    /// Cells of the last array on the path, as a union of interval boxes.
    pub cells: BoxTable,
    /// Number of θ-joins executed.
    pub hops: usize,
    /// Per-hop execution statistics (rows probed/matched, boxes emitted,
    /// wall time, index/thread usage).
    pub stats: QueryStats,
}

/// Consolidated construction + configuration builder for [`Dslog`]
/// (start with [`Dslog::options`]).
///
/// This is the one front door for every open-time decision that used to
/// be spread across the `open`/`open_lazy`/`open_as_of` constructor trio
/// and a pile of post-construction `set_*` calls. Settings accumulate on
/// the builder; the terminal methods ([`open`](Self::open),
/// [`create`](Self::create), [`build`](Self::build)) validate the
/// combination **before** any file IO and reject contradictions with
/// [`DslogError::InvalidOptions`].
///
/// ```no_run
/// use dslog::api::Dslog;
///
/// // Before: Dslog::open_lazy(dir)? + db.set_wal_retention(8) + ...
/// let db = Dslog::options()
///     .lazy(true)
///     .wal_retention(8)
///     .wal_actor("ingest-worker")
///     .open("db-dir")?;
/// # Ok::<(), dslog::DslogError>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct OpenOptions {
    lazy: bool,
    as_of: Option<u64>,
    gzip: Option<bool>,
    wal_actor: Option<String>,
    wal_retention: Option<u32>,
    compress: Option<CompressOptions>,
    query: Option<QueryOptions>,
    composite_policy: Option<CompositePolicy>,
    maintenance: MaintenancePolicy,
}

impl OpenOptions {
    /// Defer table decode + checksum to first use (see the former
    /// `open_lazy`): the open costs O(catalog), ideal when a large
    /// database serves queries that touch few edges. Conflicts with
    /// [`as_of`](Self::as_of) — time-travel snapshots are rebuilt from
    /// the operation log and always decode eagerly.
    pub fn lazy(mut self, lazy: bool) -> Self {
        self.lazy = lazy;
        self
    }

    /// Open the database as it was at `generation` — time travel (see the
    /// former `open_as_of`). The snapshot is unbound and read-only with
    /// respect to the source directory; it conflicts with
    /// [`lazy`](Self::lazy) and with a background
    /// [`maintenance`](Self::maintenance) policy.
    pub fn as_of(mut self, generation: u64) -> Self {
        self.as_of = Some(generation);
        self
    }

    /// On-disk format: `true` selects the ProvRC-GZip table format. For
    /// [`create`](Self::create) this is the format written; for
    /// [`open`](Self::open) it is validated against what the catalog
    /// actually uses (omit it to accept either).
    pub fn gzip(mut self, gzip: bool) -> Self {
        self.gzip = Some(gzip);
        self
    }

    /// Actor label recorded on subsequent operation-log records.
    pub fn wal_actor(mut self, actor: impl Into<String>) -> Self {
        self.wal_actor = Some(actor.into());
        self
    }

    /// Keep the edge files of up to this many prior commits on disk so
    /// [`as_of`](Self::as_of) opens can resolve them.
    pub fn wal_retention(mut self, generations: u32) -> Self {
        self.wal_retention = Some(generations);
        self
    }

    /// ProvRC compression options for every capture-path compress.
    pub fn compress(mut self, opts: CompressOptions) -> Self {
        self.compress = Some(opts);
        self
    }

    /// Default query-execution options.
    pub fn query(mut self, opts: QueryOptions) -> Self {
        self.query = Some(opts);
        self
    }

    /// Composite-edge materialization policy.
    pub fn composite_policy(mut self, policy: CompositePolicy) -> Self {
        self.composite_policy = Some(policy);
        self
    }

    /// Background-compaction policy, honored by
    /// [`crate::service::DslogService`] after each successful commit.
    pub fn maintenance(mut self, policy: MaintenancePolicy) -> Self {
        self.maintenance = policy;
        self
    }

    /// Reject combinations that contradict each other. Shared by every
    /// terminal method so a bad bundle fails before any file IO.
    fn validate(&self) -> Result<()> {
        if self.as_of.is_some() && self.lazy {
            return Err(DslogError::InvalidOptions(
                "`as_of` snapshots are rebuilt from the operation log and always decode \
                 eagerly; combining `as_of` with `lazy` is a conflict",
            ));
        }
        if self.as_of.is_some() && self.maintenance.auto_compact_generations.is_some() {
            return Err(DslogError::InvalidOptions(
                "`as_of` snapshots are unbound and read-only; a background compaction \
                 policy cannot apply to them",
            ));
        }
        Ok(())
    }

    /// Copy the accumulated configuration onto a constructed handle.
    fn configure(self, db: &mut Dslog) {
        if let Some(actor) = &self.wal_actor {
            db.set_wal_actor(actor);
        }
        if let Some(retention) = self.wal_retention {
            db.set_wal_retention(retention);
        }
        if let Some(opts) = self.compress {
            db.set_compress_options(opts);
        }
        if let Some(opts) = self.query {
            db.set_query_options(opts);
        }
        if let Some(policy) = self.composite_policy {
            db.set_composite_policy(policy);
        }
        db.maintenance = self.maintenance;
    }

    /// Open an existing database directory with this configuration.
    /// Replaces the `open`/`open_lazy`/`open_as_of` trio: `lazy` and
    /// `as_of` select the open mode, everything else is applied to the
    /// handle before it is returned.
    pub fn open(self, dir: impl AsRef<std::path::Path>) -> Result<Dslog> {
        self.validate()?;
        let dir = dir.as_ref();
        let storage = match self.as_of {
            Some(generation) => crate::storage::persist::open_as_of(dir, generation)?,
            None if self.lazy => crate::storage::persist::open_lazy(dir)?,
            None => crate::storage::persist::open(dir)?,
        };
        let mut db = Dslog {
            storage,
            reuse: ReuseManager::default(),
            query_options: QueryOptions::default(),
            maintenance: MaintenancePolicy::default(),
            opened_lazy: self.lazy,
            opened_as_of: self.as_of,
        };
        if let (Some(requested), Some((_, actual, _))) = (self.gzip, db.bound_database()) {
            if requested != actual {
                return Err(DslogError::InvalidOptions(
                    "the database directory was written with the other gzip mode; omit \
                     `gzip` to accept what the catalog records",
                ));
            }
        }
        self.configure(&mut db);
        Ok(db)
    }

    /// Create a **new** database at `dir` with this configuration: an
    /// empty snapshot is saved immediately (in the [`gzip`](Self::gzip)
    /// format, plain by default), binding the handle for incremental
    /// [`commit`](Dslog::commit)s. Conflicts with [`as_of`](Self::as_of)
    /// and [`lazy`](Self::lazy), which describe *existing* data.
    pub fn create(self, dir: impl AsRef<std::path::Path>) -> Result<Dslog> {
        self.validate()?;
        if self.as_of.is_some() || self.lazy {
            return Err(DslogError::InvalidOptions(
                "`as_of` and `lazy` select how existing data is read; they cannot apply \
                 to a freshly created database",
            ));
        }
        let gzip = self.gzip.unwrap_or(false);
        let mut db = Dslog::new();
        self.configure(&mut db);
        db.save(dir, gzip)?;
        Ok(db)
    }

    /// Build an unbound in-memory database with this configuration.
    /// Settings that only mean something for a database directory
    /// (`lazy`, `as_of`, `gzip`) are rejected.
    pub fn build(self) -> Result<Dslog> {
        self.validate()?;
        if self.as_of.is_some() || self.lazy || self.gzip.is_some() {
            return Err(DslogError::InvalidOptions(
                "`lazy`, `as_of`, and `gzip` describe a database directory; use \
                 open(dir)/create(dir), or drop them to build in memory",
            ));
        }
        let mut db = Dslog::new();
        self.configure(&mut db);
        Ok(db)
    }
}

/// One snapshot of a [`Dslog`] handle's effective configuration
/// ([`Dslog::config`] / [`Dslog::reconfigure`]). The service layer
/// reports it over the net protocol as the stats `"config"` object.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DslogConfig {
    /// Whether the handle was opened lazily (tables decoded on first
    /// use). Fixed at open time.
    pub lazy: bool,
    /// The time-travel generation this handle was opened as of, if any.
    /// Fixed at open time.
    pub as_of: Option<u64>,
    /// The bound directory's on-disk format (`None` while unbound).
    /// Fixed by the binding.
    pub gzip: Option<bool>,
    /// Actor label on new operation-log records.
    pub wal_actor: String,
    /// Effective retention window (explicit override or the
    /// `DSLOG_WAL_RETAIN` environment default).
    pub wal_retention: u32,
    /// Capture-path compression options.
    pub compress: CompressOptions,
    /// Default query-execution options.
    pub query: QueryOptions,
    /// Composite-edge materialization policy.
    pub composite_policy: CompositePolicy,
    /// Background-compaction policy.
    pub maintenance: MaintenancePolicy,
}

/// Top-level DSLog handle: storage manager + reuse manager + query planner.
#[derive(Debug, Default)]
pub struct Dslog {
    storage: StorageManager,
    reuse: ReuseManager,
    query_options: QueryOptions,
    maintenance: MaintenancePolicy,
    opened_lazy: bool,
    opened_as_of: Option<u64>,
}

impl Dslog {
    /// A fresh DSLog instance with paper-default settings (backward tables
    /// materialized, merge step enabled, reuse predictor with m = 1).
    pub fn new() -> Self {
        Self::default()
    }

    /// Start an [`OpenOptions`] builder — the consolidated front door for
    /// opening, creating, or building a database with non-default
    /// configuration. See the builder docs for the migration story from
    /// the former constructor trio.
    pub fn options() -> OpenOptions {
        OpenOptions::default()
    }

    /// Snapshot the handle's effective configuration: open-time facts
    /// (`lazy`, `as_of`, the binding's `gzip` mode) plus every runtime
    /// knob, in one [`DslogConfig`] value.
    pub fn config(&self) -> DslogConfig {
        DslogConfig {
            lazy: self.opened_lazy,
            as_of: self.opened_as_of,
            gzip: self.storage.persist_binding().map(|(_, gzip, _)| gzip),
            wal_actor: self.storage.wal_actor(),
            wal_retention: self.storage.wal_retention(),
            compress: self.storage.compress_options(),
            query: self.query_options,
            composite_policy: self.storage.composite_policy(),
            maintenance: self.maintenance,
        }
    }

    /// Apply a (typically [`config`](Self::config)-derived, then edited)
    /// configuration snapshot to this handle. The open-time facts
    /// (`lazy`, `as_of`, `gzip`) cannot be changed here — pass them back
    /// unmodified or get [`DslogError::InvalidOptions`]; reopen through
    /// [`Dslog::options`] to change how data is read.
    pub fn reconfigure(&mut self, config: DslogConfig) -> Result<()> {
        let current = self.config();
        if config.lazy != current.lazy
            || config.as_of != current.as_of
            || config.gzip != current.gzip
        {
            return Err(DslogError::InvalidOptions(
                "`lazy`, `as_of`, and `gzip` are fixed when a database is opened; reopen \
                 through Dslog::options() to change them",
            ));
        }
        self.set_wal_actor(&config.wal_actor);
        self.set_wal_retention(config.wal_retention);
        self.set_compress_options(config.compress);
        self.set_query_options(config.query);
        self.set_composite_policy(config.composite_policy);
        self.maintenance = config.maintenance;
        Ok(())
    }

    /// The background-compaction policy this handle carries (honored by
    /// [`crate::service::DslogService`] after successful commits).
    pub fn maintenance_policy(&self) -> MaintenancePolicy {
        self.maintenance
    }

    /// Fold the bound directory's cold generations into consolidated
    /// segment files (see [`crate::storage::compact`]): every live edge
    /// is re-referenced as a range of a shard-assigned segment, a
    /// crc32-trailed manifest records those ranges, and superseded
    /// generation files are swept — except those the operation-log
    /// retention window (see
    /// [`set_wal_retention`](Self::set_wal_retention)) still vouches for,
    /// so time-travel opens inside the window keep working. The catalog
    /// rename remains the single commit point; a crash at any earlier
    /// step leaves the previous generation intact.
    pub fn compact(&self) -> Result<crate::storage::compact::CompactReport> {
        let (dir, gzip, _) = self.storage.persist_binding().ok_or(DslogError::NotBound)?;
        crate::storage::compact::compact(&self.storage, &dir, gzip)
    }

    /// Clone this database for epoch-snapshot publication (the
    /// [`crate::service`] write path): storage edges, the persistence
    /// binding, and the commit lock are *shared* with `self` (see
    /// `StorageManager::clone_for_epoch`); the reuse predictor state and
    /// query options are value-cloned. Mutating the clone's array/edge
    /// maps never disturbs readers of the original.
    pub(crate) fn clone_for_epoch(&self) -> Self {
        Self {
            storage: self.storage.clone_for_epoch(),
            reuse: self.reuse.clone(),
            query_options: self.query_options,
            maintenance: self.maintenance,
            opened_lazy: self.opened_lazy,
            opened_as_of: self.opened_as_of,
        }
    }

    /// Override the orientation materialization policy.
    pub fn set_materialize(&mut self, m: Materialize) {
        self.storage.set_materialize(m);
    }

    /// Override the compression options used by every capture-path
    /// compress: `add_lineage` / `register_operation` ingest and on-demand
    /// orientation derivation. `fast = false` selects the row-of-structs
    /// ablation pipeline (bit-identical output, for benchmarking).
    pub fn set_compress_options(&mut self, opts: crate::provrc::CompressOptions) {
        self.storage.set_compress_options(opts);
    }

    /// The compression options the capture path currently runs with.
    pub fn compress_options(&self) -> crate::provrc::CompressOptions {
        self.storage.compress_options()
    }

    /// Enable/disable the per-hop merge step (the `DSLog-NoMerge` ablation).
    pub fn set_merge(&mut self, merge: bool) {
        self.query_options.merge = merge;
    }

    /// Enable/disable the sorted interval index on the query path (the
    /// scan-vs-probe ablation; `false` restores the nested-loop engine).
    pub fn set_use_index(&mut self, use_index: bool) {
        self.query_options.use_index = use_index;
    }

    /// Enable/disable multi-threaded hop execution.
    pub fn set_parallel(&mut self, parallel: bool) {
        self.query_options.parallel = parallel;
    }

    /// Enable/disable the cost-based multi-hop planner (the planner
    /// ablation; `false` restores the paper's strict path-order chain).
    /// See [`crate::query::plan`].
    pub fn set_use_planner(&mut self, use_planner: bool) {
        self.query_options.use_planner = use_planner;
    }

    /// Override the composite-edge materialization policy (hit threshold
    /// and size caps; see [`crate::reuse::CompositePolicy`]).
    pub fn set_composite_policy(&mut self, policy: crate::reuse::CompositePolicy) {
        self.storage.set_composite_policy(policy);
    }

    /// Replace the full default query-option set.
    pub fn set_query_options(&mut self, opts: QueryOptions) {
        self.query_options = opts;
    }

    /// The options `prov_query` currently runs with.
    pub fn query_options(&self) -> QueryOptions {
        self.query_options
    }

    /// Access the underlying storage manager (benchmarking, inspection).
    pub fn storage(&self) -> &StorageManager {
        &self.storage
    }

    /// Mutable storage access (ingest paths used by the bench harness).
    pub fn storage_mut(&mut self) -> &mut StorageManager {
        &mut self.storage
    }

    /// Reuse statistics (Table IX harness).
    pub fn reuse_stats(&self) -> ReuseStats {
        self.reuse.stats()
    }

    /// Per-edge forward/backward query counts (§IV.C workload statistics).
    pub fn edge_stats(&self) -> Vec<crate::storage::EdgeStats> {
        self.storage.edge_stats()
    }

    /// Re-materialize each edge's majority query orientation and drop the
    /// minority one (§IV.C: store "one version depending on the
    /// distribution of forward and reverse queries"). Safe at any time;
    /// dropped orientations are re-derived on demand.
    pub fn rebalance_materialization(&mut self) -> Result<()> {
        self.storage.rebalance_materialization()
    }

    /// Access to the reuse manager (coverage experiments).
    pub fn reuse_manager(&self) -> &ReuseManager {
        &self.reuse
    }

    /// Persist the stored arrays and compressed lineage tables into a
    /// database directory. With `gzip` the table files use the ProvRC-GZip
    /// disk format (the paper's recommended long-term configuration).
    ///
    /// The write is atomic: every file goes through temp-file + rename, the
    /// catalog rename is the commit point, and files from older snapshots
    /// are swept afterwards — a crash mid-save leaves the previous snapshot
    /// intact, and re-saving over an existing directory (even with a
    /// different edge set or `gzip` flag) can never leave stale tables.
    ///
    /// Saving into the *bound* directory — the one this database was
    /// opened from or last saved into, with the same `gzip` mode — is
    /// **incremental**: only edges added, re-derived, or rebalanced since
    /// the last commit are rewritten; everything else is re-referenced in
    /// place (see [`commit`](Self::commit) for the detailed report).
    ///
    /// Every orientation materialized in memory — including orientations a
    /// query lazily derived — is written. The reuse predictor's signature
    /// tables are not persisted; they are re-learned per process (§VI.C
    /// re-validates mappings anyway).
    pub fn save(&self, dir: impl AsRef<std::path::Path>, gzip: bool) -> Result<()> {
        crate::storage::persist::save(&self.storage, dir.as_ref(), gzip)
    }

    /// Incrementally commit to the bound database directory: write only
    /// the edge tables added or re-derived since the last commit, reuse
    /// every clean table file in the new catalog, and bump the snapshot
    /// generation with the catalog rename as the single atomic commit
    /// point. Appending one edge to a 100k-row database costs O(new
    /// edge), not O(database).
    ///
    /// The binding is established by [`save`](Self::save),
    /// [`open`](Self::open), or [`open_lazy`](Self::open_lazy); calling
    /// `commit` on a never-persisted database returns
    /// [`DslogError::NotBound`]. Callers running commits concurrently
    /// with saves on the same handle should serialize them (the
    /// [`crate::service`] layer does).
    pub fn commit(&self) -> Result<crate::storage::persist::CommitReport> {
        let (dir, gzip, _) = self.storage.persist_binding().ok_or(DslogError::NotBound)?;
        crate::storage::persist::commit(&self.storage, &dir, gzip)
    }

    /// The database directory this handle is bound to for incremental
    /// commits, with its gzip mode and last committed generation —
    /// `None` until the first [`save`](Self::save)/open.
    pub fn bound_database(&self) -> Option<(std::path::PathBuf, bool, u64)> {
        self.storage.persist_binding()
    }

    /// Open a database directory previously written by [`save`](Self::save),
    /// eagerly decoding (and checksum-verifying) every table file.
    ///
    /// Thin wrapper kept for existing callers — prefer
    /// [`Dslog::options()`](Self::options)`.open(dir)`, which takes the
    /// same path and accepts the rest of the configuration too.
    #[doc(hidden)]
    pub fn open(dir: impl AsRef<std::path::Path>) -> Result<Self> {
        Self::options().open(dir)
    }

    /// Open a database directory in O(catalog) time: table files are only
    /// stat'd now and read, verified against the catalog's recorded
    /// length + crc32, and decoded on the first query hop that needs them.
    /// (Legacy v1 directories carry no checksums and fall back to an eager
    /// open.)
    ///
    /// Thin wrapper kept for existing callers — prefer
    /// [`Dslog::options()`](Self::options)`.lazy(true).open(dir)`.
    #[doc(hidden)]
    pub fn open_lazy(dir: impl AsRef<std::path::Path>) -> Result<Self> {
        Self::options().lazy(true).open(dir)
    }

    /// Open the database as it was at `generation` — time travel. The
    /// operation log's commit record for that generation embeds the exact
    /// catalog that was live, and the retention policy (see
    /// [`set_wal_retention`](Self::set_wal_retention)) decides how long
    /// its edge files stay on disk. The snapshot is unbound: committing
    /// it is a full save into a fresh target, never a rewrite of history.
    /// Returns [`DslogError::GenerationNotRetained`] for generations the
    /// log does not record or whose files were already swept.
    ///
    /// Thin wrapper kept for existing callers — prefer
    /// [`Dslog::options()`](Self::options)`.as_of(generation).open(dir)`.
    #[doc(hidden)]
    pub fn open_as_of(dir: impl AsRef<std::path::Path>, generation: u64) -> Result<Self> {
        Self::options().as_of(generation).open(dir)
    }

    /// Every cleanly framed record of the bound database's operation log,
    /// oldest first ([`DslogError::NotBound`] without a binding). The
    /// read is torn-tail tolerant and never mutates the log.
    pub fn history(&self) -> Result<Vec<crate::storage::wal::OpRecord>> {
        let (dir, _, _) = self.storage.persist_binding().ok_or(DslogError::NotBound)?;
        crate::storage::wal::history(&dir)
    }

    /// Set the actor label recorded on this handle's subsequent
    /// operation-log records (`"local"` by default; the CLI and server
    /// install `"cli"`, `"auto-commit"`, or the network peer address).
    pub fn set_wal_actor(&self, actor: &str) {
        self.storage.set_wal_actor(actor);
    }

    /// Keep the edge files of up to `generations` prior commits on disk
    /// so [`open_as_of`](Self::open_as_of) can resolve them. Defaults to
    /// 0 (identical sweep behavior to pre-log releases); the
    /// `DSLOG_WAL_RETAIN` environment variable supplies a process-wide
    /// default.
    pub fn set_wal_retention(&self, generations: u32) {
        self.storage.set_wal_retention(generations);
    }

    /// Install (or clear) a fault-injection policy for subsequent commits
    /// — a test API; see [`crate::storage::wal::IoPolicy`].
    pub fn set_io_policy(&self, policy: Option<std::sync::Arc<crate::storage::wal::IoPolicy>>) {
        self.storage.set_io_policy(policy);
    }

    /// Define a named tracked array with a fixed shape (paper: `Array`).
    pub fn define_array(&mut self, name: &str, shape: &[usize]) -> Result<()> {
        self.storage.define_array(name, shape)
    }

    /// Capture and store lineage between two arrays (paper: `Lineage`).
    ///
    /// `in_array` is the source of contributions, `out_array` the result.
    pub fn add_lineage(
        &mut self,
        in_array: &str,
        out_array: &str,
        capture: &dyn Capture,
    ) -> Result<()> {
        let in_shape = self.storage.array(in_array)?.shape.clone();
        let out_shape = self.storage.array(out_array)?.shape.clone();
        let table = capture.capture(&in_shape, &out_shape);
        self.storage.ingest_lineage(in_array, out_array, &table)
    }

    /// Register an executed operation (paper: `register_operation`).
    ///
    /// `captures` holds one capture per (input, output) pair in row-major
    /// pair order (`in_idx * out_arrs.len() + out_idx`). With `reuse`
    /// enabled, stored signatures may satisfy the call without invoking any
    /// capture; either way the automatic reuse predictor observes the call.
    pub fn register_operation(
        &mut self,
        op_name: &str,
        in_arrs: &[&str],
        out_arrs: &[&str],
        captures: Vec<Box<dyn Capture>>,
        op_args: &[ArgValue],
        reuse: bool,
    ) -> Result<RegistrationOutcome> {
        self.register_operation_full(op_name, in_arrs, out_arrs, captures, op_args, reuse, None)
    }

    /// Like [`register_operation`](Self::register_operation) but with
    /// content hashes of the input arrays, enabling `base_sig` reuse.
    #[allow(clippy::too_many_arguments)]
    pub fn register_operation_full(
        &mut self,
        op_name: &str,
        in_arrs: &[&str],
        out_arrs: &[&str],
        captures: Vec<Box<dyn Capture>>,
        op_args: &[ArgValue],
        reuse: bool,
        content_hashes: Option<&[u64]>,
    ) -> Result<RegistrationOutcome> {
        assert_eq!(
            captures.len(),
            in_arrs.len() * out_arrs.len(),
            "one capture per (input, output) pair"
        );
        let in_shapes: Vec<Vec<usize>> = in_arrs
            .iter()
            .map(|a| self.storage.array(a).map(|m| m.shape.clone()))
            .collect::<Result<_>>()?;
        let out_shapes: Vec<Vec<usize>> = out_arrs
            .iter()
            .map(|a| self.storage.array(a).map(|m| m.shape.clone()))
            .collect::<Result<_>>()?;

        if reuse {
            if let Some((hit, mapping)) =
                self.reuse
                    .lookup(op_name, op_args, content_hashes, &in_shapes, &out_shapes)
            {
                self.install_mapping(in_arrs, out_arrs, mapping)?;
                return Ok(RegistrationOutcome::Reused(hit));
            }
        }

        // Fresh capture per pair.
        let mut tables = Vec::with_capacity(captures.len());
        for (pair_idx, capture) in captures.iter().enumerate() {
            let in_idx = pair_idx / out_arrs.len();
            let out_idx = pair_idx % out_arrs.len();
            let table = capture.capture(&in_shapes[in_idx], &out_shapes[out_idx]);
            self.storage
                .ingest_lineage(in_arrs[in_idx], out_arrs[out_idx], &table)?;
            tables.push(self.storage.stored_table(
                in_arrs[in_idx],
                out_arrs[out_idx],
                crate::table::Orientation::Backward,
            )?);
        }

        // Feed the automatic reuse predictor (§VI.C).
        let mapping = Mapping {
            tables: tables.iter().map(|t| (**t).clone()).collect(),
            in_shapes,
            out_shapes,
        };
        self.reuse
            .observe(op_name, op_args, content_hashes, &mapping);
        Ok(RegistrationOutcome::Captured)
    }

    fn install_mapping(
        &mut self,
        in_arrs: &[&str],
        out_arrs: &[&str],
        mapping: Mapping,
    ) -> Result<()> {
        let n_out = out_arrs.len();
        for (pair_idx, table) in mapping.tables.into_iter().enumerate() {
            let in_idx = pair_idx / n_out;
            let out_idx = pair_idx % n_out;
            self.storage
                .ingest_compressed(in_arrs[in_idx], out_arrs[out_idx], table)?;
        }
        Ok(())
    }

    /// Query lineage along a path of arrays (paper: `prov_query`).
    ///
    /// `path[0]` holds the `query_cells`; the result contains the linked
    /// cells of the last array. A path in operation direction is a forward
    /// query; against it, a backward query; mixed paths work hop by hop.
    pub fn prov_query(&self, path: &[&str], query_cells: &[Vec<i64>]) -> Result<QueryResult> {
        self.prov_query_opts(path, query_cells, self.query_options)
    }

    /// `prov_query` with explicit options (used by the ablation benches).
    pub fn prov_query_opts(
        &self,
        path: &[&str],
        query_cells: &[Vec<i64>],
        opts: QueryOptions,
    ) -> Result<QueryResult> {
        self.validate_path(path)?;
        let arity = self.validate_query_cells(path[0], query_cells)?;

        let mut cur = BoxTable::from_cells(arity, query_cells);
        // The query itself is always range-encoded into Q′ (§V.B: "The
        // query, Q′, is encoded from Q in the same format as the compressed
        // relational lineage tables with multi-attribute range encoding").
        // This is part of query encoding, not the inter-hop merge ablation.
        cur.merge();
        let (cells, stats) = if opts.use_planner {
            crate::query::plan::execute(&self.storage, path, cur, opts)?
        } else {
            crate::query::plan::path_order(&self.storage, path, cur, opts)?
        };
        let hops = stats.hops.len();
        Ok(QueryResult { cells, hops, stats })
    }

    /// Query lineage for many cell sets sharing one path in a single sweep
    /// (paper: `prov_query`, vectorized). Results come back in input
    /// order, cell-for-cell identical to a [`prov_query`](Self::prov_query)
    /// loop, but all frontiers are deduplicated into one set of unique
    /// boxes so each hop resolves its table and probes each distinct box
    /// exactly once — one index pass instead of `queries.len()` passes.
    ///
    /// Every returned result carries the *batch-wide* statistics (`hops`
    /// and `stats` are shared, not per-query).
    pub fn prov_query_batch(
        &self,
        path: &[&str],
        queries: &[Vec<Vec<i64>>],
    ) -> Result<Vec<QueryResult>> {
        self.prov_query_batch_opts(path, queries, self.query_options)
    }

    /// [`prov_query_batch`](Self::prov_query_batch) with explicit options.
    pub fn prov_query_batch_opts(
        &self,
        path: &[&str],
        queries: &[Vec<Vec<i64>>],
        opts: QueryOptions,
    ) -> Result<Vec<QueryResult>> {
        self.validate_path(path)?;
        let mut frontiers = Vec::with_capacity(queries.len());
        for query_cells in queries {
            let arity = self.validate_query_cells(path[0], query_cells)?;
            let mut cur = BoxTable::from_cells(arity, query_cells);
            cur.merge();
            frontiers.push(cur);
        }
        let (outs, stats) =
            crate::query::plan::execute_batch(&self.storage, path, &frontiers, opts)?;
        let hops = stats.hops.len();
        Ok(outs
            .into_iter()
            .map(|cells| QueryResult {
                cells,
                hops,
                stats: stats.clone(),
            })
            .collect())
    }

    /// Validate a query path: long enough, and **every** array on it
    /// exists — including arrays after a hop that may empty the frontier
    /// (a misspelled late array must error, not vanish into an empty
    /// result).
    fn validate_path(&self, path: &[&str]) -> Result<()> {
        if path.len() < 2 {
            return Err(DslogError::PathTooShort);
        }
        for name in path {
            self.storage.array(name)?;
        }
        Ok(())
    }

    /// Validate one query's cells against the first array; returns its
    /// arity.
    fn validate_query_cells(&self, first_array: &str, query_cells: &[Vec<i64>]) -> Result<usize> {
        let first = self.storage.array(first_array)?;
        let arity = first.ndim();
        for cell in query_cells {
            if cell.len() != arity {
                return Err(DslogError::QueryArityMismatch {
                    expected: arity,
                    got: cell.len(),
                });
            }
            if cell
                .iter()
                .zip(first.shape.iter())
                .any(|(&v, &d)| v < 0 || v >= d as i64)
            {
                return Err(DslogError::CellOutOfBounds {
                    index: cell.clone(),
                    shape: first.shape.clone(),
                });
            }
        }
        Ok(arity)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sum_lineage() -> LineageTable {
        let mut t = LineageTable::new(1, 2);
        for i in 0..3 {
            for j in 0..2 {
                t.push_row(&[i, i, j]);
            }
        }
        t
    }

    fn setup() -> Dslog {
        let mut db = Dslog::new();
        db.define_array("A", &[3, 2]).unwrap();
        db.define_array("B", &[3]).unwrap();
        db.add_lineage("A", "B", &TableCapture::new(sum_lineage()))
            .unwrap();
        db
    }

    #[test]
    fn backward_query() {
        let db = setup();
        let r = db.prov_query(&["B", "A"], &[vec![1]]).unwrap();
        assert!(r.cells.contains_cell(&[1, 0]));
        assert!(r.cells.contains_cell(&[1, 1]));
        assert!(!r.cells.contains_cell(&[0, 0]));
        assert_eq!(r.hops, 1);
    }

    #[test]
    fn forward_query() {
        let db = setup();
        let r = db.prov_query(&["A", "B"], &[vec![2, 0]]).unwrap();
        assert!(r.cells.contains_cell(&[2]));
        assert!(!r.cells.contains_cell(&[1]));
    }

    #[test]
    fn two_hop_roundtrip() {
        let db = setup();
        let r = db.prov_query(&["B", "A", "B"], &[vec![0]]).unwrap();
        assert!(r.cells.contains_cell(&[0]));
        assert_eq!(r.hops, 2);
    }

    #[test]
    fn error_cases() {
        let db = setup();
        assert!(matches!(
            db.prov_query(&["B"], &[vec![0]]),
            Err(DslogError::PathTooShort)
        ));
        assert!(matches!(
            db.prov_query(&["B", "A"], &[vec![0, 0]]),
            Err(DslogError::QueryArityMismatch { .. })
        ));
        assert!(matches!(
            db.prov_query(&["B", "A"], &[vec![5]]),
            Err(DslogError::CellOutOfBounds { .. })
        ));
        assert!(matches!(
            db.prov_query(&["B", "Q"], &[vec![0]]),
            Err(DslogError::UnknownArray(_))
        ));
    }

    #[test]
    fn register_operation_and_reuse_flow() {
        let mut db = Dslog::new();
        for run in 0..3 {
            let a = format!("A{run}");
            let b = format!("B{run}");
            db.define_array(&a, &[3, 2]).unwrap();
            db.define_array(&b, &[3]).unwrap();
            let outcome = db
                .register_operation(
                    "sum_axis1",
                    &[&a],
                    &[&b],
                    vec![Box::new(TableCapture::new(sum_lineage()))],
                    &[ArgValue::Int(1)],
                    true,
                )
                .unwrap();
            match run {
                0 | 1 => assert_eq!(outcome, RegistrationOutcome::Captured),
                _ => assert!(matches!(outcome, RegistrationOutcome::Reused(_))),
            }
        }
        // Reused edge answers queries identically.
        let r = db.prov_query(&["B2", "A2"], &[vec![2]]).unwrap();
        assert!(r.cells.contains_cell(&[2, 0]));
        assert!(r.cells.contains_cell(&[2, 1]));
        assert_eq!(db.reuse_stats().captures, 2);
        assert!(db.reuse_stats().dim_hits + db.reuse_stats().gen_hits >= 1);
    }

    #[test]
    fn misspelled_late_array_errors_even_when_frontier_empties() {
        // Regression: the old loop validated path arrays hop by hop and
        // returned early once the frontier went empty, so a misspelled
        // array *after* the emptying hop silently produced Ok(empty).
        let mut db = Dslog::new();
        db.define_array("X", &[4]).unwrap();
        db.define_array("Y", &[4]).unwrap();
        let mut t = LineageTable::new(1, 1);
        t.push_row(&[0, 0]); // only Y[0] has lineage: Y[3] empties at hop 1
        db.add_lineage("X", "Y", &TableCapture::new(t)).unwrap();
        for use_planner in [true, false] {
            let mut opts = db.query_options();
            opts.use_planner = use_planner;
            assert!(matches!(
                db.prov_query_opts(&["Y", "X", "Zz"], &[vec![3]], opts),
                Err(DslogError::UnknownArray(_))
            ));
            assert!(matches!(
                db.prov_query_batch_opts(&["Y", "X", "Zz"], &[vec![vec![3]]], opts),
                Err(DslogError::UnknownArray(_))
            ));
        }
    }

    #[test]
    fn batch_matches_per_query_loop() {
        let db = setup();
        let queries: Vec<Vec<Vec<i64>>> = vec![vec![vec![0]], vec![vec![1], vec![2]], vec![]];
        let batch = db.prov_query_batch(&["B", "A"], &queries).unwrap();
        assert_eq!(batch.len(), queries.len());
        for (q, r) in queries.iter().zip(&batch) {
            let single = db.prov_query(&["B", "A"], q).unwrap();
            assert_eq!(r.cells.cell_set(), single.cells.cell_set());
        }
        assert!(batch[2].cells.is_empty());
        // Batch stats are shared across results.
        assert_eq!(batch[0].stats, batch[1].stats);
    }

    #[test]
    fn open_options_rejects_conflicts_before_io() {
        // No such directory exists — validation must fire first.
        let missing = std::path::Path::new("/nonexistent/dslog-options-test");
        assert!(matches!(
            Dslog::options().as_of(3).lazy(true).open(missing),
            Err(DslogError::InvalidOptions(_))
        ));
        assert!(matches!(
            Dslog::options()
                .as_of(3)
                .maintenance(MaintenancePolicy::every_generations(4))
                .open(missing),
            Err(DslogError::InvalidOptions(_))
        ));
        assert!(matches!(
            Dslog::options().lazy(true).create(missing),
            Err(DslogError::InvalidOptions(_))
        ));
        assert!(matches!(
            Dslog::options().gzip(true).build(),
            Err(DslogError::InvalidOptions(_))
        ));
    }

    #[test]
    fn open_options_create_open_and_config_roundtrip() {
        let dir = std::env::temp_dir().join(format!("dslog-api-options-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mut db = Dslog::options()
            .gzip(true)
            .wal_retention(5)
            .wal_actor("builder-test")
            .maintenance(MaintenancePolicy::every_generations(4))
            .create(&dir)
            .unwrap();
        db.define_array("A", &[3, 2]).unwrap();
        db.define_array("B", &[3]).unwrap();
        db.add_lineage("A", "B", &TableCapture::new(sum_lineage()))
            .unwrap();
        db.commit().unwrap();

        let cfg = db.config();
        assert_eq!(cfg.gzip, Some(true));
        assert_eq!(cfg.wal_retention, 5);
        assert_eq!(cfg.wal_actor, "builder-test");
        assert_eq!(cfg.maintenance.auto_compact_generations, Some(4));

        // Requesting the wrong format at open time is a build-time error;
        // omitting gzip (or matching it) accepts the catalog's record.
        assert!(matches!(
            Dslog::options().gzip(false).open(&dir),
            Err(DslogError::InvalidOptions(_))
        ));
        let reopened = Dslog::options().gzip(true).lazy(true).open(&dir).unwrap();
        assert!(reopened.config().lazy);
        let r = reopened.prov_query(&["B", "A"], &[vec![1]]).unwrap();
        assert!(r.cells.contains_cell(&[1, 0]));

        // reconfigure: runtime knobs change, open-time facts do not.
        let mut db = reopened;
        let mut cfg = db.config();
        cfg.wal_retention = 9;
        cfg.query.merge = false;
        db.reconfigure(cfg).unwrap();
        assert_eq!(db.config().wal_retention, 9);
        assert!(!db.query_options().merge);
        let mut bad = db.config();
        bad.gzip = Some(false);
        assert!(matches!(
            db.reconfigure(bad),
            Err(DslogError::InvalidOptions(_))
        ));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn compact_requires_binding_at_api_level() {
        let db = setup();
        assert!(matches!(db.compact(), Err(DslogError::NotBound)));
    }

    #[test]
    fn empty_query_result_short_circuits() {
        // Lineage that misses some output cells: query those.
        let mut db = Dslog::new();
        db.define_array("X", &[4]).unwrap();
        db.define_array("Y", &[4]).unwrap();
        let mut t = LineageTable::new(1, 1);
        t.push_row(&[0, 0]); // only Y[0] has lineage
        db.add_lineage("X", "Y", &TableCapture::new(t)).unwrap();
        let r = db.prov_query(&["Y", "X"], &[vec![3]]).unwrap();
        assert!(r.cells.is_empty());
    }
}
