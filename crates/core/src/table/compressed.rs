//! The ProvRC-compressed lineage relation (paper §IV).
//!
//! A compressed table keeps one side of the relation **absolute** (the
//! *primary* side — output attributes for the backward orientation stored by
//! default, input attributes for the forward orientation of Table III) and
//! allows the other side (*secondary*) to be either absolute intervals or
//! **relative** intervals anchored to a primary attribute.
//!
//! Additionally, for lineage reuse (§VI.B), an absolute interval that spans
//! the full extent of its attribute may be replaced by the *symbolic* cell
//! [`Cell::Sym`]; such a table is *generalized* and must be instantiated with
//! concrete shapes before queries.
//!
//! ## Layout
//!
//! Storage is **columnar** (struct-of-arrays): one `Vec<Cell>` per
//! attribute. The query engine probes whole primary columns (and the
//! serializer writes column-major streams), so keeping each attribute
//! contiguous is the cache-friendly layout; row views are materialized on
//! demand. Each table also lazily builds and caches a [`TableIndex`] over
//! its primary columns — see [`CompressedTable::index`].

use crate::error::{DslogError, Result};
use crate::interval::Interval;
use crate::table::index::TableIndex;
use crate::table::lineage::LineageTable;
use std::sync::OnceLock;

/// Which side of the relation is kept absolute.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Orientation {
    /// Output attributes absolute; input attributes may be relative.
    /// This is the version materialized for backward queries (paper default).
    Backward,
    /// Input attributes absolute; output attributes may be relative
    /// (paper Table III), used for forward queries.
    Forward,
}

impl Orientation {
    /// The opposite orientation.
    pub fn flip(self) -> Orientation {
        match self {
            Orientation::Backward => Orientation::Forward,
            Orientation::Forward => Orientation::Backward,
        }
    }
}

/// One attribute's value inside a compressed row.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Cell {
    /// An absolute interval of indices.
    Abs(Interval),
    /// A relative interval: the value set is `primary[anchor] + delta`
    /// (all-to-all in the relative space, §V.B.1).
    Rel {
        /// Index of the primary attribute this cell is anchored to.
        anchor: u8,
        /// Delta interval (`value − anchor`).
        delta: Interval,
    },
    /// Symbolic full extent `[0, D_attr − 1]` of attribute `attr`
    /// (index reshaping, §VI.B / Fig. 6).
    Sym {
        /// Index of the attribute (in primary-then-secondary order) whose
        /// dimension defines this interval.
        attr: u8,
    },
}

impl Cell {
    /// Shorthand absolute point.
    pub fn point(v: i64) -> Cell {
        Cell::Abs(Interval::point(v))
    }

    /// Shorthand absolute interval.
    pub fn abs(lo: i64, hi: i64) -> Cell {
        Cell::Abs(Interval::new(lo, hi))
    }

    /// Whether this cell is symbolic.
    pub fn is_sym(&self) -> bool {
        matches!(self, Cell::Sym { .. })
    }
}

/// A ProvRC-compressed lineage relation.
///
/// Attribute order within a row is primary attributes first, then secondary
/// attributes; `attr` indices in [`Cell::Rel`]/[`Cell::Sym`] use this order.
#[derive(Debug)]
pub struct CompressedTable {
    orientation: Orientation,
    primary_arity: usize,
    secondary_arity: usize,
    /// Extent (dimension size) of each attribute, primary-then-secondary
    /// order. Needed for reshaping and bounds reasoning.
    extents: Vec<i64>,
    /// Columnar cell storage: `columns[k][i]` is row `i`'s attribute `k`.
    columns: Vec<Vec<Cell>>,
    /// Number of symbolic cells, maintained incrementally so
    /// [`is_generalized`](Self::is_generalized) is O(1) on the query path.
    sym_count: usize,
    /// Lazily built primary-column index; `None` inside means the table is
    /// generalized and cannot be indexed. Reset by any mutation.
    index: OnceLock<Option<TableIndex>>,
}

impl Clone for CompressedTable {
    fn clone(&self) -> Self {
        // The index cache is intentionally not cloned: clones are usually
        // mutated (reshaping), which would invalidate it anyway.
        Self {
            orientation: self.orientation,
            primary_arity: self.primary_arity,
            secondary_arity: self.secondary_arity,
            extents: self.extents.clone(),
            columns: self.columns.clone(),
            sym_count: self.sym_count,
            index: OnceLock::new(),
        }
    }
}

impl PartialEq for CompressedTable {
    fn eq(&self, other: &Self) -> bool {
        // Equality is logical (same relation); the index cache is derived
        // state and excluded.
        self.orientation == other.orientation
            && self.primary_arity == other.primary_arity
            && self.secondary_arity == other.secondary_arity
            && self.extents == other.extents
            && self.columns == other.columns
    }
}

impl Eq for CompressedTable {}

impl CompressedTable {
    /// Create an empty compressed table.
    pub fn new(
        orientation: Orientation,
        primary_arity: usize,
        secondary_arity: usize,
        extents: Vec<i64>,
    ) -> Self {
        assert!(primary_arity > 0 && secondary_arity > 0);
        assert_eq!(extents.len(), primary_arity + secondary_arity);
        Self {
            orientation,
            primary_arity,
            secondary_arity,
            extents,
            columns: vec![Vec::new(); primary_arity + secondary_arity],
            sym_count: 0,
            index: OnceLock::new(),
        }
    }

    /// Assemble a table directly from columnar cell storage — the fast path
    /// shared by the deserializer and the columnar compression pipeline,
    /// both of which already hold whole columns (no per-row `Vec<Cell>`
    /// temporaries). All columns must have equal length; the symbolic-cell
    /// count is recomputed here.
    pub(crate) fn from_columns(
        orientation: Orientation,
        primary_arity: usize,
        secondary_arity: usize,
        extents: Vec<i64>,
        columns: Vec<Vec<Cell>>,
    ) -> Self {
        assert!(primary_arity > 0 && secondary_arity > 0);
        assert_eq!(extents.len(), primary_arity + secondary_arity);
        assert_eq!(columns.len(), primary_arity + secondary_arity);
        debug_assert!(columns.iter().all(|c| c.len() == columns[0].len()));
        let sym_count = columns
            .iter()
            .flat_map(|c| c.iter())
            .filter(|c| c.is_sym())
            .count();
        Self {
            orientation,
            primary_arity,
            secondary_arity,
            extents,
            columns,
            sym_count,
            index: OnceLock::new(),
        }
    }

    /// The stored orientation.
    pub fn orientation(&self) -> Orientation {
        self.orientation
    }

    /// Arity of the absolute (query-side) attributes.
    pub fn primary_arity(&self) -> usize {
        self.primary_arity
    }

    /// Arity of the possibly-relative attributes.
    pub fn secondary_arity(&self) -> usize {
        self.secondary_arity
    }

    /// Total attribute count.
    pub fn arity(&self) -> usize {
        self.primary_arity + self.secondary_arity
    }

    /// Attribute extents (primary-then-secondary).
    pub fn extents(&self) -> &[i64] {
        &self.extents
    }

    /// Mutable access for reshaping.
    pub(crate) fn extents_mut(&mut self) -> &mut Vec<i64> {
        self.index = OnceLock::new();
        &mut self.extents
    }

    /// Number of compressed rows.
    pub fn n_rows(&self) -> usize {
        self.columns[0].len()
    }

    /// Whether the table has no rows.
    pub fn is_empty(&self) -> bool {
        self.columns[0].is_empty()
    }

    /// Append a row of cells (primary attributes first).
    pub fn push_row(&mut self, row: &[Cell]) {
        debug_assert_eq!(row.len(), self.arity());
        for (column, &cell) in self.columns.iter_mut().zip(row) {
            column.push(cell);
        }
        self.sym_count += row.iter().filter(|c| c.is_sym()).count();
        self.index = OnceLock::new();
    }

    /// Attribute `k`'s cell of row `i`.
    #[inline]
    pub fn cell(&self, i: usize, k: usize) -> Cell {
        self.columns[k][i]
    }

    /// Attribute `k`'s full column, one cell per row.
    #[inline]
    pub fn column(&self, k: usize) -> &[Cell] {
        &self.columns[k]
    }

    /// Row `i` materialized as an owned cell vector (primary first).
    pub fn row(&self, i: usize) -> Vec<Cell> {
        self.columns.iter().map(|col| col[i]).collect()
    }

    /// Iterate rows as owned cell vectors. Hot paths should prefer
    /// [`column`](Self::column) / [`cell`](Self::cell) access.
    pub fn rows(&self) -> impl Iterator<Item = Vec<Cell>> + '_ {
        (0..self.n_rows()).map(|i| self.row(i))
    }

    /// Apply `f` to every cell of attribute `k` (used by reshaping).
    /// Maintains the symbolic-cell count and invalidates the index cache.
    pub(crate) fn map_column(&mut self, k: usize, mut f: impl FnMut(&mut Cell)) {
        for cell in &mut self.columns[k] {
            self.sym_count -= usize::from(cell.is_sym());
            f(cell);
            self.sym_count += usize::from(cell.is_sym());
        }
        self.index = OnceLock::new();
    }

    /// Whether any cell is symbolic (table is generalized, not queryable).
    /// O(1): the count is maintained on mutation.
    pub fn is_generalized(&self) -> bool {
        self.sym_count > 0
    }

    /// The sorted interval index over the primary columns, built on first
    /// use and cached until the table is mutated. `None` for generalized
    /// tables (symbolic cells cannot be ordered).
    pub fn index(&self) -> Option<&TableIndex> {
        self.index.get_or_init(|| TableIndex::build(self)).as_ref()
    }

    /// Force the index to be built now (storage layer: build alongside each
    /// materialized orientation so the first query doesn't pay for it).
    pub fn ensure_index(&self) {
        let _ = self.index();
    }

    /// Whether the index cache is already populated (observability: lets the
    /// storage layer's tests assert a table was published index-first).
    pub fn has_cached_index(&self) -> bool {
        matches!(self.index.get(), Some(Some(_)))
    }

    /// Resolve a cell to a concrete absolute interval given concrete values
    /// of the primary attributes. `Rel` cells need `primary_values`; `Sym`
    /// cells resolve against the stored extents.
    pub fn resolve_cell(&self, cell: &Cell, primary_values: &[i64]) -> Interval {
        match *cell {
            Cell::Abs(ivl) => ivl,
            Cell::Rel { anchor, delta } => {
                Interval::point(primary_values[anchor as usize]).minkowski_sum(&delta)
            }
            Cell::Sym { attr } => Interval::new(0, self.extents[attr as usize] - 1),
        }
    }

    /// Decompress to the uncompressed relation, in *output-attributes-first*
    /// attribute order regardless of orientation (so both orientations of
    /// the same lineage decompress to identical relations).
    pub fn decompress(&self) -> Result<LineageTable> {
        if self.is_generalized() {
            return Err(DslogError::NotInstantiated);
        }
        let (out_arity, in_arity) = match self.orientation {
            Orientation::Backward => (self.primary_arity, self.secondary_arity),
            Orientation::Forward => (self.secondary_arity, self.primary_arity),
        };
        let mut table = LineageTable::new(out_arity, in_arity);
        let pa = self.primary_arity;
        let sa = self.secondary_arity;
        let mut primary_vals = vec![0i64; pa];
        let mut row_buf = vec![0i64; pa + sa];
        for i in 0..self.n_rows() {
            // Enumerate the Cartesian product of primary intervals.
            let prim_ivls: Vec<Interval> = (0..pa)
                .map(|k| match self.columns[k][i] {
                    Cell::Abs(ivl) => ivl,
                    _ => unreachable!("primary cells are absolute in instantiated tables"),
                })
                .collect();
            let sec: Vec<Cell> = (pa..pa + sa).map(|k| self.columns[k][i]).collect();
            for p in prim_ivls.iter().zip(primary_vals.iter_mut()) {
                *p.1 = p.0.lo;
            }
            'prim: loop {
                // Enumerate the secondary product for this primary point.
                let sec_ivls: Vec<Interval> = sec
                    .iter()
                    .map(|c| self.resolve_cell(c, &primary_vals))
                    .collect();
                let mut sec_vals: Vec<i64> = sec_ivls.iter().map(|ivl| ivl.lo).collect();
                'sec: loop {
                    // Emit row in out-attrs-first order.
                    match self.orientation {
                        Orientation::Backward => {
                            row_buf[..pa].copy_from_slice(&primary_vals);
                            row_buf[pa..].copy_from_slice(&sec_vals);
                        }
                        Orientation::Forward => {
                            row_buf[..sa].copy_from_slice(&sec_vals);
                            row_buf[sa..].copy_from_slice(&primary_vals);
                        }
                    }
                    table.push_row(&row_buf);
                    for k in (0..sa).rev() {
                        if sec_vals[k] < sec_ivls[k].hi {
                            sec_vals[k] += 1;
                            for (j, v) in sec_vals.iter_mut().enumerate().skip(k + 1) {
                                *v = sec_ivls[j].lo;
                            }
                            continue 'sec;
                        }
                    }
                    break;
                }
                for k in (0..pa).rev() {
                    if primary_vals[k] < prim_ivls[k].hi {
                        primary_vals[k] += 1;
                        for (j, v) in primary_vals.iter_mut().enumerate().skip(k + 1) {
                            *v = prim_ivls[j].lo;
                        }
                        continue 'prim;
                    }
                }
                break;
            }
        }
        table.normalize();
        Ok(table)
    }

    /// Approximate in-memory footprint in bytes (reporting only; the
    /// measured storage number comes from the serialized format).
    pub fn nbytes_in_memory(&self) -> usize {
        self.columns
            .iter()
            .map(|col| col.len() * std::mem::size_of::<Cell>())
            .sum()
    }
}

impl std::fmt::Display for CompressedTable {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "CompressedTable({:?}, {} primary + {} secondary, {} rows)",
            self.orientation,
            self.primary_arity,
            self.secondary_arity,
            self.n_rows()
        )?;
        for row in self.rows() {
            let parts: Vec<String> = row
                .iter()
                .map(|c| match c {
                    Cell::Abs(ivl) => format!("{ivl}"),
                    Cell::Rel { anchor, delta } => {
                        if delta.is_point() {
                            format!("@{anchor}{:+}", delta.lo)
                        } else {
                            format!("@{anchor}+[{}, {}]", delta.lo, delta.hi)
                        }
                    }
                    Cell::Sym { attr } => format!("[0, D{attr})"),
                })
                .collect();
            writeln!(f, "  {}", parts.join(" | "))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Hand-built compressed form of the paper's running example (Table II,
    /// 1-based): single row `b1=[1,3], a1=Rel(b1, 0), a2=[1,2]`.
    fn paper_table_ii() -> CompressedTable {
        let mut t = CompressedTable::new(Orientation::Backward, 1, 2, vec![3, 3, 2]);
        t.push_row(&[
            Cell::abs(1, 3),
            Cell::Rel {
                anchor: 0,
                delta: Interval::point(0),
            },
            Cell::abs(1, 2),
        ]);
        t
    }

    #[test]
    fn decompress_paper_running_example() {
        let t = paper_table_ii();
        let full = t.decompress().unwrap();
        let expected = LineageTable::from_rows(
            1,
            2,
            &[
                &[1, 1, 1],
                &[1, 1, 2],
                &[2, 2, 1],
                &[2, 2, 2],
                &[3, 3, 1],
                &[3, 3, 2],
            ],
        );
        assert_eq!(full.row_set(), expected.row_set());
    }

    #[test]
    fn forward_orientation_decompresses_to_same_relation() {
        // Paper Table III: a1=[1,3], a2=[1,2], b1=Rel(a1, 0).
        let mut t = CompressedTable::new(Orientation::Forward, 2, 1, vec![3, 2, 3]);
        t.push_row(&[
            Cell::abs(1, 3),
            Cell::abs(1, 2),
            Cell::Rel {
                anchor: 0,
                delta: Interval::point(0),
            },
        ]);
        let full = t.decompress().unwrap();
        assert_eq!(full.out_arity(), 1);
        assert_eq!(full.in_arity(), 2);
        assert_eq!(
            full.row_set(),
            paper_table_ii().decompress().unwrap().row_set()
        );
    }

    #[test]
    fn generalized_table_refuses_decompression() {
        let mut t = CompressedTable::new(Orientation::Backward, 1, 1, vec![1, 4]);
        t.push_row(&[Cell::point(0), Cell::Sym { attr: 1 }]);
        assert_eq!(t.decompress(), Err(DslogError::NotInstantiated));
    }

    #[test]
    fn resolve_sym_uses_extent() {
        let t = CompressedTable::new(Orientation::Backward, 1, 1, vec![1, 4]);
        let ivl = t.resolve_cell(&Cell::Sym { attr: 1 }, &[0]);
        assert_eq!(ivl, Interval::new(0, 3));
    }

    #[test]
    fn rel_cell_resolution() {
        let t = paper_table_ii();
        let rel = Cell::Rel {
            anchor: 0,
            delta: Interval::new(-1, 1),
        };
        assert_eq!(t.resolve_cell(&rel, &[5]), Interval::new(4, 6));
    }

    #[test]
    fn columnar_access_matches_rows() {
        let t = paper_table_ii();
        assert_eq!(t.column(0), &[Cell::abs(1, 3)]);
        assert_eq!(t.cell(0, 2), Cell::abs(1, 2));
        assert_eq!(t.row(0).len(), 3);
    }

    #[test]
    fn sym_count_tracks_mutation() {
        let mut t = CompressedTable::new(Orientation::Backward, 1, 1, vec![4, 4]);
        t.push_row(&[Cell::point(0), Cell::abs(0, 3)]);
        assert!(!t.is_generalized());
        t.map_column(1, |c| *c = Cell::Sym { attr: 1 });
        assert!(t.is_generalized());
        t.map_column(1, |c| *c = Cell::abs(0, 3));
        assert!(!t.is_generalized());
    }

    #[test]
    fn index_cache_resets_on_mutation() {
        let mut t = CompressedTable::new(Orientation::Backward, 1, 1, vec![10, 10]);
        t.push_row(&[Cell::point(0), Cell::point(0)]);
        assert!(t.index().is_some());
        t.push_row(&[Cell::point(5), Cell::point(5)]);
        // Rebuilt index must see the new row.
        let idx = t.index().unwrap();
        assert_eq!(idx.probe(&[Interval::point(5)]), &[1]);
    }
}
