//! Quickstart: the paper's running example end to end.
//!
//! Reproduces Figure 1 / Tables I–VI of the paper: capture the cell-level
//! lineage of `B = numpy.sum(A, axis=1)` on a 3×2 array, compress it with
//! ProvRC, inspect the compressed relation, and answer backward and forward
//! queries in situ (without decompressing).
//!
//! Run with: `cargo run --example quickstart`

use dslog::api::{Dslog, TableCapture};
use dslog::provrc;
use dslog::storage::format;
use dslog::table::{LineageTable, Orientation};

fn main() {
    // -----------------------------------------------------------------
    // 1. The operation and its raw lineage relation (paper Fig. 1 B).
    //
    //    A = [[0,3],[1,5],[2,1]]  (shape 3×2)
    //    B = numpy.sum(A, axis=1) (shape 3)
    //
    //    Every output cell B[i] is contributed to by A[i, 0] and A[i, 1],
    //    so the relation R(b1, a1, a2) has six rows.
    // -----------------------------------------------------------------
    let mut lineage = LineageTable::new(1, 2);
    for i in 0..3 {
        for j in 0..2 {
            lineage.push_row(&[i, i, j]);
        }
    }
    println!(
        "raw lineage relation R(b1, a1, a2): {} rows",
        lineage.n_rows()
    );
    for row in lineage.rows() {
        println!("  b1={}  a1={}  a2={}", row[0], row[1], row[2]);
    }

    // -----------------------------------------------------------------
    // 2. ProvRC compression (paper §IV, Tables I–II).
    //
    //    Step 1 range-encodes a2 into [0,1]; step 2 rewrites a1 as a
    //    delta against b1 (a1 = b1 + 0) and range-encodes b1 into [0,2].
    //    Six rows become one.
    // -----------------------------------------------------------------
    let compressed = provrc::compress(&lineage, &[3], &[3, 2], Orientation::Backward);
    println!(
        "\nProvRC-compressed (backward orientation): {} row(s)",
        compressed.n_rows()
    );
    println!("{compressed}");
    let raw_bytes = lineage.nbytes();
    let comp_bytes = format::serialize(&compressed).len();
    println!(
        "size: {raw_bytes} B raw -> {comp_bytes} B compressed ({:.1}%)",
        100.0 * comp_bytes as f64 / raw_bytes as f64
    );

    // The forward orientation (paper Table III) stores the same relation
    // with absolute input attributes instead.
    let forward = provrc::compress(&lineage, &[3], &[3, 2], Orientation::Forward);
    println!(
        "\nforward orientation (Table III): {} row(s)",
        forward.n_rows()
    );
    println!("{forward}");

    // -----------------------------------------------------------------
    // 3. The DSLog API: define arrays, register the operation, query.
    // -----------------------------------------------------------------
    let mut db = Dslog::new();
    db.define_array("A", &[3, 2]).unwrap();
    db.define_array("B", &[3]).unwrap();
    db.register_operation(
        "sum_axis1",
        &["A"],
        &["B"],
        vec![Box::new(TableCapture::new(lineage))],
        &[],
        false,
    )
    .unwrap();

    // Backward query (paper Tables IV–VI): which cells of A contributed
    // to B[0] and B[1]? Answered in situ via a range θ-join.
    let back = db.prov_query(&["B", "A"], &[vec![0], vec![1]]).unwrap();
    println!("\nbackward query B[0..=1] -> A:");
    for b in back.cells.boxes() {
        println!(
            "  a1 in [{},{}], a2 in [{},{}]",
            b[0].lo, b[0].hi, b[1].lo, b[1].hi
        );
    }
    assert!(back.cells.contains_cell(&[1, 1]));
    assert!(!back.cells.contains_cell(&[2, 0]));

    // Forward query: which cells of B does A[2, 0] influence?
    let fwd = db.prov_query(&["A", "B"], &[vec![2, 0]]).unwrap();
    println!("\nforward query A[2,0] -> B:");
    for b in fwd.cells.boxes() {
        println!("  b1 in [{},{}]", b[0].lo, b[0].hi);
    }
    assert!(fwd.cells.contains_cell(&[2]));

    println!("\nok: queries answered in situ over the compressed relation");
}
