//! Compression-pipeline scaling bench: rows vs p50 compress latency, fast
//! columnar pipeline vs the row-of-structs ablation, across the three
//! canonical edge regimes (one-to-one, convolution window, incompressible
//! scatter — `dslog_workloads::edges`). Tracks the perf trajectory of the
//! capture path; the acceptance bar is fast ≥ 5× ablation at 100k rows on
//! at least one workload, with identical output on every edge.
//!
//! Emits an aligned table on stdout and machine-readable
//! `BENCH_compress.json` in the working directory. Every measured pair is
//! asserted bit-identical (fast ≡ ablation), so running this binary at any
//! scale doubles as a parity smoke gate (CI runs `--scale 0.01`).
//!
//! Run: `cargo run -p dslog-bench --release --bin compress_scaling [--scale f]`

use dslog::provrc::{self, CompressOptions};
use dslog::storage::format;
use dslog::table::{LineageTable, Orientation};
use dslog_bench::{cli_scale_seed, p50, secs, timed, TextTable};
use std::fmt::Write as _;

struct Point {
    edge: &'static str,
    rows: usize,
    compressed_rows: usize,
    fast_p50: f64,
    ablation_p50: f64,
    /// Serialized ProvRC bytes as a percentage of raw bytes.
    ratio_pct: f64,
    /// Fast-pipeline ingest throughput.
    rows_per_s: f64,
    mb_per_s: f64,
}

fn measure(
    edge: &'static str,
    table: &LineageTable,
    out_shape: &[usize],
    in_shape: &[usize],
    reps: usize,
) -> Point {
    let fast_opts = CompressOptions::default();
    let ablation_opts = CompressOptions {
        fast: false,
        ..CompressOptions::default()
    };

    // Parity check before timing: the pipelines must agree bit-for-bit.
    let fast = provrc::compress_opts(table, out_shape, in_shape, Orientation::Backward, fast_opts);
    let ablation = provrc::compress_opts(
        table,
        out_shape,
        in_shape,
        Orientation::Backward,
        ablation_opts,
    );
    assert_eq!(
        fast.n_rows(),
        ablation.n_rows(),
        "fast/ablation row-count disagreement on {edge}"
    );
    assert_eq!(fast, ablation, "fast/ablation disagreement on {edge}");

    let run = |opts: CompressOptions| {
        let mut samples: Vec<f64> = (0..reps)
            .map(|_| {
                timed(|| {
                    provrc::compress_opts(table, out_shape, in_shape, Orientation::Backward, opts)
                })
                .1
            })
            .collect();
        p50(&mut samples)
    };

    let fast_p50 = run(fast_opts);
    let ablation_p50 = run(ablation_opts);
    let raw_bytes = table.nbytes();
    let compressed_bytes = format::serialize(&fast).len();
    Point {
        edge,
        rows: table.n_rows(),
        compressed_rows: fast.n_rows(),
        fast_p50,
        ablation_p50,
        ratio_pct: 100.0 * compressed_bytes as f64 / raw_bytes.max(1) as f64,
        rows_per_s: table.n_rows() as f64 / fast_p50.max(1e-12),
        mb_per_s: raw_bytes as f64 / 1_048_576.0 / fast_p50.max(1e-12),
    }
}

fn main() {
    let (scale, _seed) = cli_scale_seed();
    println!("compress_scaling — ProvRC fast columnar pipeline vs ablation (scale {scale})");

    let sizes = [1_000usize, 10_000, 100_000];
    let mut table = TextTable::new(&[
        "edge",
        "rows",
        "compressed",
        "fast p50",
        "ablation p50",
        "speedup",
        "ratio %",
        "rows/s",
        "MB/s raw",
    ]);
    let mut json_rows = String::new();
    let mut reps_used = 0usize;
    for &base in &sizes {
        let rows = ((base as f64 * scale) as usize).max(100);
        // Fewer reps at the largest scale keeps the ablation side bounded.
        let reps = if rows >= 100_000 { 5 } else { 9 };
        reps_used = reps;
        for (edge, lineage, out_shape, in_shape) in dslog_workloads::edges::all(rows) {
            let pt = measure(edge, &lineage, &out_shape, &in_shape, reps);
            let speedup = pt.ablation_p50 / pt.fast_p50.max(1e-12);
            table.row(&[
                pt.edge.to_string(),
                pt.rows.to_string(),
                pt.compressed_rows.to_string(),
                secs(pt.fast_p50),
                secs(pt.ablation_p50),
                format!("{speedup:.1}x"),
                format!("{:.4}", pt.ratio_pct),
                format!("{:.2e}", pt.rows_per_s),
                format!("{:.1}", pt.mb_per_s),
            ]);
            if !json_rows.is_empty() {
                json_rows.push(',');
            }
            write!(
                json_rows,
                "{{\"edge\":\"{}\",\"rows\":{},\"compressed_rows\":{},\"fast_p50_s\":{:.9},\
                 \"ablation_p50_s\":{:.9},\"speedup\":{:.2},\"ratio_pct\":{:.4},\
                 \"rows_per_s\":{:.0},\"mb_per_s_raw\":{:.2}}}",
                pt.edge,
                pt.rows,
                pt.compressed_rows,
                pt.fast_p50,
                pt.ablation_p50,
                speedup,
                pt.ratio_pct,
                pt.rows_per_s,
                pt.mb_per_s
            )
            .unwrap();
        }
    }
    println!("{}", table.render());

    let json = format!(
        "{{\"bench\":\"compress_scaling\",\"scale\":{scale},\"reps\":{reps_used},\
         \"orientation\":\"backward\",\"series\":[{json_rows}]}}\n"
    );
    std::fs::write("BENCH_compress.json", &json).expect("write BENCH_compress.json");
    println!("wrote BENCH_compress.json");
}
