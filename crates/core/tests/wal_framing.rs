//! Property tests for the operation-log frame codec.
//!
//! The contract: arbitrary records roundtrip bit-exactly through
//! `encode_record`/`decode_body`; and a log image truncated or
//! bit-flipped at ANY byte offset never panics the reader, never
//! resurrects a damaged record, and always parses to a clean,
//! unmodified prefix of the original records (crc framing makes a
//! mutated-but-accepted record a 2^-32 event — treated as impossible
//! under the pinned proptest seed).

use dslog::storage::wal::{self, OpKind, OpRecord};
use proptest::prelude::*;

/// Lowercase identifier, 1..10 chars (the vendored proptest shim has no
/// regex-string strategies, so build strings from byte vectors).
fn arb_name() -> impl Strategy<Value = String> {
    proptest::collection::vec(0u8..26, 1..10)
        .prop_map(|v| v.into_iter().map(|b| char::from(b'a' + b)).collect())
}

/// Arbitrary unicode actor string, including the empty string.
fn arb_actor() -> impl Strategy<Value = String> {
    proptest::collection::vec(any::<char>(), 0..12).prop_map(|cs| cs.into_iter().collect())
}

fn arb_kind() -> impl Strategy<Value = OpKind> {
    prop_oneof![
        (arb_name(), proptest::collection::vec(1usize..64, 1..4))
            .prop_map(|(name, shape)| OpKind::DefineArray { name, shape }),
        (arb_name(), arb_name(), any::<u64>(), any::<u32>()).prop_map(
            |(in_array, out_array, bytes, digest)| OpKind::IngestEdge {
                in_array,
                out_array,
                bytes,
                digest,
            }
        ),
        proptest::collection::vec(arb_name(), 2..5).prop_map(|path| OpKind::Composite { path }),
        any::<bool>().prop_map(|gzip| OpKind::ConvertGzip { gzip }),
        proptest::collection::vec(any::<u8>(), 0..128)
            .prop_map(|catalog| OpKind::Commit { catalog }),
    ]
}

/// Everything but the op_id, which must stay monotonic within one log.
fn arb_record_parts() -> impl Strategy<Value = (u64, String, u64, u64, OpKind)> {
    (
        any::<u64>(),
        arb_actor(),
        0u64..1000,
        0u64..1000,
        arb_kind(),
    )
}

type RecordParts = (u64, String, u64, u64, OpKind);

/// Assemble a log image: op_ids 1..=n, frames concatenated.
fn build_log(parts: Vec<RecordParts>) -> (Vec<OpRecord>, Vec<u8>) {
    let records: Vec<OpRecord> = parts
        .into_iter()
        .enumerate()
        .map(
            |(i, (timestamp_ms, actor, gen_before, gen_after, kind))| OpRecord {
                op_id: i as u64 + 1,
                timestamp_ms,
                actor,
                gen_before,
                gen_after,
                kind,
            },
        )
        .collect();
    let mut log = Vec::new();
    for r in &records {
        log.extend_from_slice(&wal::encode_record(r));
    }
    (records, log)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// encode → decode is the identity, per record and per log image.
    #[test]
    fn records_roundtrip_exactly(parts in proptest::collection::vec(arb_record_parts(), 1..6)) {
        let (records, log) = build_log(parts);
        for r in &records {
            let frame = wal::encode_record(r);
            let body = &frame[4..frame.len() - 4];
            prop_assert_eq!(&wal::decode_body(body).unwrap(), r);
        }
        let (parsed, clean_len) = wal::read_log(&log);
        prop_assert_eq!(clean_len, log.len());
        prop_assert_eq!(parsed, records);
    }

    /// Cutting the log at EVERY byte offset keeps exactly the records
    /// whose frames end at or before the cut — a partially written
    /// record is dropped whole, never partially decoded.
    #[test]
    fn truncation_at_every_offset_drops_only_the_tail(
        parts in proptest::collection::vec(arb_record_parts(), 1..5),
    ) {
        let (records, log) = build_log(parts);
        let mut boundaries = vec![0usize];
        for r in &records {
            boundaries.push(boundaries[boundaries.len() - 1] + wal::encode_record(r).len());
        }
        for cut in 0..log.len() {
            let (parsed, clean_len) = wal::read_log(&log[..cut]);
            let complete = boundaries.iter().filter(|&&b| b > 0 && b <= cut).count();
            prop_assert_eq!(parsed.len(), complete, "cut at {}", cut);
            prop_assert_eq!(clean_len, boundaries[complete], "cut at {}", cut);
            prop_assert_eq!(&parsed[..], &records[..complete], "cut at {}", cut);
        }
    }

    /// Flipping one bit at EVERY byte offset yields an unmodified prefix
    /// of the original records: the damaged record (and everything after
    /// it) vanishes, and no record ever comes back altered.
    #[test]
    fn bitflip_at_every_offset_never_resurrects(
        parts in proptest::collection::vec(arb_record_parts(), 1..4),
        bit in 0u8..8,
    ) {
        let (records, log) = build_log(parts);
        for i in 0..log.len() {
            let mut damaged = log.clone();
            damaged[i] ^= 1 << bit;
            let (parsed, clean_len) = wal::read_log(&damaged);
            prop_assert!(clean_len <= damaged.len());
            prop_assert!(parsed.len() <= records.len(), "offset {}", i);
            prop_assert_eq!(&parsed[..], &records[..parsed.len()], "offset {}", i);
        }
    }

    /// Entirely random bytes never panic the reader or the body decoder.
    #[test]
    fn random_bytes_never_panic(bytes in proptest::collection::vec(any::<u8>(), 0..512)) {
        let (parsed, clean_len) = wal::read_log(&bytes);
        prop_assert!(clean_len <= bytes.len());
        // Accidentally well-framed random bytes would need a valid crc32;
        // parsing is still exercised, the result just isn't asserted on.
        drop(parsed);
        let _ = wal::decode_body(&bytes);
    }
}
