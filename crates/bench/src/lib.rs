//! # dslog-bench — the experiment harness
//!
//! One binary per table/figure of the paper's evaluation (§VII):
//!
//! | Target | Regenerates | Run |
//! |---|---|---|
//! | `table7`  | Table VII — compression ratios, 12 ops × 7 formats | `cargo run -p dslog-bench --release --bin table7` |
//! | `fig7`    | Fig. 7 — compression latency vs input size | `… --bin fig7` |
//! | `fig8`    | Fig. 8 — query latency on image/relational/ResNet workflows | `… --bin fig8` |
//! | `fig9`    | Fig. 9 — query latency on random numpy pipelines | `… --bin fig9` |
//! | `table9`  | Table IX — numpy coverage of compression & reuse | `… --bin table9` |
//! | `table10` | Table X — Kaggle workflow compressibility study | `… --bin table10` |
//! | `query_scaling` | rows vs p50 latency, indexed vs scan (writes `BENCH_query.json`) | `… --bin query_scaling` |
//! | `persist_scaling` | save / eager-open / lazy-open timings, plain vs gzip (writes `BENCH_persist.json`) | `… --bin persist_scaling` |
//! | `compress_scaling` | rows vs p50 compress latency, fast columnar pipeline vs ablation (writes `BENCH_compress.json`; doubles as the fast ≡ ablation smoke gate) | `… --bin compress_scaling` |
//! | `serve_scaling` | TCP query latency (p50/p99), idle vs under sustained ingest, vs client count (writes `BENCH_serve.json`) | `… --bin serve_scaling` |
//!
//! Criterion micro-benchmarks live under `benches/` (compression latency,
//! query latency, ProvRC internals, and the merge/parallel ablations).
//!
//! Two diagnostic binaries support performance investigation: `debug_merge`
//! (per-pipeline DSLog vs DSLog-NoMerge timing) and `debug_hops` (per-hop
//! θ-join vs merge timing and box counts along one pipeline).
//!
//! All binaries accept `--scale <f>` to shrink/grow workload sizes and
//! print machine-readable rows (aligned text) comparable against the
//! paper's published tables/figures (see the README's benchmarks section
//! for how to run and read them).

#![forbid(unsafe_code)]

use std::time::Instant;

/// Time a closure, returning (result, seconds).
pub fn timed<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let start = Instant::now();
    let out = f();
    (out, start.elapsed().as_secs_f64())
}

/// Median of a non-empty sample of seconds (sorts in place).
pub fn p50(samples: &mut [f64]) -> f64 {
    percentile(samples, 50.0)
}

/// The `q`-th percentile (0–100, nearest-rank) of a non-empty sample of
/// seconds (sorts in place). `percentile(s, 99.0)` is the tail-latency
/// metric of the serving benchmark.
pub fn percentile(samples: &mut [f64], q: f64) -> f64 {
    assert!(!samples.is_empty(), "percentile of an empty sample");
    assert!((0.0..=100.0).contains(&q), "percentile out of range");
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let rank = (q / 100.0 * samples.len() as f64).ceil() as usize;
    samples[rank.saturating_sub(1).min(samples.len() - 1)]
}

/// Format a byte count as MB with sensible precision.
pub fn mb(bytes: usize) -> String {
    let v = bytes as f64 / 1_048_576.0;
    if v >= 100.0 {
        format!("{v:.0}")
    } else if v >= 1.0 {
        format!("{v:.2}")
    } else {
        format!("{v:.4}")
    }
}

/// Format a ratio (compressed / raw) as a percentage.
pub fn pct(compressed: usize, raw: usize) -> String {
    if raw == 0 {
        return "-".to_string();
    }
    let v = 100.0 * compressed as f64 / raw as f64;
    if v >= 10.0 {
        format!("{v:.1}")
    } else if v >= 0.01 {
        format!("{v:.3}")
    } else {
        format!("{v:.2e}")
    }
}

/// Format seconds with adaptive precision.
pub fn secs(v: f64) -> String {
    if v >= 1.0 {
        format!("{v:.2}s")
    } else if v >= 1e-3 {
        format!("{:.2}ms", v * 1e3)
    } else {
        format!("{:.1}us", v * 1e6)
    }
}

/// A simple aligned-text table writer for experiment output.
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Start a table with the given column headers.
    pub fn new(header: &[&str]) -> Self {
        Self {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append one row.
    pub fn row(&mut self, cells: &[String]) {
        assert_eq!(cells.len(), self.header.len());
        self.rows.push(cells.to_vec());
    }

    /// Render with aligned columns.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, c) in widths.iter_mut().zip(row.iter()) {
                *w = (*w).max(c.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .zip(widths.iter())
                .map(|(c, w)| format!("{c:>w$}"))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }
}

/// Parse `--scale <f>` (default 1.0) and `--seed <n>` (default 42) from argv.
pub fn cli_scale_seed() -> (f64, u64) {
    let args: Vec<String> = std::env::args().collect();
    let mut scale = 1.0f64;
    let mut seed = 42u64;
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--scale" if i + 1 < args.len() => {
                scale = args[i + 1].parse().unwrap_or(1.0);
                i += 1;
            }
            "--seed" if i + 1 < args.len() => {
                seed = args[i + 1].parse().unwrap_or(42);
                i += 1;
            }
            _ => {}
        }
        i += 1;
    }
    (scale, seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn formatting_helpers() {
        assert_eq!(mb(1_048_576), "1.00");
        assert_eq!(pct(50, 100), "50.0");
        assert_eq!(pct(1, 100_000), "1.00e-3");
        assert_eq!(pct(0, 0), "-");
        assert!(secs(0.5).ends_with("ms"));
        assert!(secs(2.0).ends_with('s'));
    }

    #[test]
    fn text_table_renders_aligned() {
        let mut t = TextTable::new(&["name", "value"]);
        t.row(&["a".to_string(), "1".to_string()]);
        t.row(&["longer".to_string(), "22".to_string()]);
        let s = t.render();
        assert!(s.contains("longer"));
        assert_eq!(s.lines().count(), 4);
    }

    #[test]
    fn percentiles_nearest_rank() {
        let mut s = vec![5.0, 1.0, 4.0, 2.0, 3.0];
        assert_eq!(percentile(&mut s, 50.0), 3.0);
        assert_eq!(percentile(&mut s, 99.0), 5.0);
        assert_eq!(percentile(&mut s, 0.0), 1.0);
        assert_eq!(percentile(&mut s, 100.0), 5.0);
        assert_eq!(p50(&mut [7.0]), 7.0);
    }

    #[test]
    fn timed_measures() {
        let (v, t) = timed(|| 21 * 2);
        assert_eq!(v, 42);
        assert!(t >= 0.0);
    }
}
