//! Dependency-free TCP serving of a [`DslogService`].
//!
//! [`NetServer::spawn`] binds a [`std::net::TcpListener`] and serves the
//! full `serve` command set (`define` / `ingest` / `query` / `commit` /
//! `stats` / `history` / `quit`, plus `shutdown`) to many concurrent clients over a
//! line protocol: one request per line, one JSON object per response line
//! (the crates registry is unreachable in the target environment, so both
//! the protocol framing and the JSON emitter are vendored here — they are
//! a few dozen lines each).
//!
//! ## Protocol
//!
//! Requests are whitespace-separated words; responses are single-line
//! JSON, `{"ok":true,...}` on success and `{"ok":false,"error":"..."}` on
//! failure (a failed command leaves the session open — only transport
//! problems close it):
//!
//! | request                         | success payload |
//! |---------------------------------|-----------------|
//! | `define NAME:3x2`               | `{"ok":true,"defined":"NAME","shape":[3,2]}` |
//! | `ingest IN OUT 0,0;1,2`         | `{"ok":true,"edges":1,"rows":2,"pending_edges":n}` (+ `"auto_commit"`) |
//! | `query B,A 1;2`                 | `{"ok":true,"hops":1,"cells":n,"boxes":[[[lo,hi],...],...]}` |
//! | `query B,A 1;2 stats`           | same, plus a trailing `"stats"` object (see below) |
//! | `query_batch B,A 1;2\|3`        | `{"ok":true,"hops":1,"results":[{"cells":n,"boxes":[...]},...]}` |
//! | `query_batch B,A 1\|2 stats`    | same, plus a trailing `"stats"` object |
//! | `commit`                        | `{"ok":true,"generation":g,"incremental":b,"files_written":w,"files_reused":r,"bytes_written":n}` |
//! | `stats`                         | `{"ok":true,"arrays":..,"edges":..,"failed_commits":..,"epoch":..,...}` |
//! | `history`                       | `{"ok":true,"records":n,"log":[{"op":1,"actor":"...","kind":"...",...},...]}` |
//! | `quit`                          | `{"ok":true,"closing":"session"}`, then closes the connection |
//! | `shutdown`                      | `{"ok":true,"closing":"server"}`, then stops the whole server |
//!
//! `ingest` rows are inline (`;`-separated rows of `,`-separated indices,
//! output attributes first — the same row layout as the CSV format):
//! network clients must not depend on paths in the server's filesystem.
//! `query_batch` takes `|`-separated queries, each a `query` cell spec;
//! the whole batch runs as one deduplicated sweep against one snapshot
//! (see [`DslogService::query_batch`]), and `results` come back in
//! request order.
//!
//! The optional trailing `stats` word asks for per-query execution
//! statistics: `"stats":{"rows_probed":n,"rows_matched":n,"plan":"...",
//! "hops":[{"probed":n,"matched":n,"boxes":n,"indexed":b,"threads":t},..]}`.
//! `plan` is the planner decision label (`path_order` / `empty_edge` /
//! `selective_first` / `composite`), or `off` when the planner is
//! disabled. Responses without the `stats` word are byte-identical to the
//! previous protocol version.
//!
//! ## Admission control and backpressure
//!
//! The server runs a **bounded worker pool** ([`ServeOptions::workers`]
//! threads); each worker owns one session at a time. Accepted connections
//! beyond the pool wait in a **bounded queue**
//! ([`ServeOptions::queue_depth`]); past that, new connections are turned
//! away immediately with `{"ok":false,"error":"server busy..."}` instead
//! of piling up. Per-session limits keep one misbehaving client from
//! starving the rest:
//!
//! - request lines are capped at [`ServeOptions::max_line_bytes`] — an
//!   oversized frame gets one error response and the connection is
//!   closed (the byte-budget discipline of the persistence layer's
//!   hostile-input handling, applied to the wire);
//! - responses are written under [`ServeOptions::write_timeout`] — a
//!   reader that stops draining its socket is disconnected, not buffered
//!   for;
//! - reads poll at [`ServeOptions::poll_interval`] so idle sessions
//!   notice server shutdown promptly.
//!
//! Queries inherit the service's epoch-snapshot guarantee: N sessions
//! querying while others ingest and commit never block each other on the
//! storage layer (see [`crate::service`] module docs).
//!
//! ```no_run
//! use dslog::net::{NetServer, ServeOptions};
//! use dslog::service::{AutoCommitPolicy, DslogService};
//! use std::sync::Arc;
//!
//! let service = Arc::new(DslogService::new(
//!     dslog::api::Dslog::new(),
//!     AutoCommitPolicy::manual(),
//! ));
//! let server = NetServer::spawn(
//!     Arc::clone(&service),
//!     "127.0.0.1:0", // OS-assigned port; see `server.local_addr()`
//!     ServeOptions::default(),
//! )
//! .unwrap();
//! println!("listening on {}", server.local_addr());
//! server.join(); // blocks until a client sends `shutdown`
//! ```

use crate::api::QueryResult;
use crate::error::Result;
use crate::query::QueryStats;
use crate::service::{BatchReport, DslogService, IngestJob, ServiceStats};
use crate::storage::persist::CommitReport;
use crate::table::LineageTable;
use dslog_sync::{ranks, Condvar, Mutex};
use std::collections::VecDeque;
use std::io::{BufRead, BufReader, ErrorKind, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Sizing and backpressure knobs for [`NetServer::spawn`]. The defaults
/// suit a small interactive deployment; benchmarks and tests scale
/// `workers` to the offered concurrency.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServeOptions {
    /// Worker threads == sessions served concurrently.
    pub workers: usize,
    /// Accepted connections allowed to wait for a free worker before new
    /// arrivals are rejected as busy. Total admitted connections are
    /// therefore bounded by `workers + queue_depth`.
    pub queue_depth: usize,
    /// Hard cap on one request line (newline included). Oversized frames
    /// get one error response and the connection is closed.
    pub max_line_bytes: usize,
    /// How long a response write may block on a slow reader before the
    /// session is dropped.
    pub write_timeout: Duration,
    /// Socket read timeout; idle sessions wake this often to check for
    /// server shutdown. Liveness/latency knob only — a session is never
    /// closed just for being idle.
    pub poll_interval: Duration,
}

impl Default for ServeOptions {
    fn default() -> Self {
        Self {
            workers: 8,
            queue_depth: 16,
            max_line_bytes: 1 << 20,
            write_timeout: Duration::from_secs(10),
            poll_interval: Duration::from_millis(200),
        }
    }
}

/// Counters for one server's lifetime, all monotonic.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NetStats {
    /// Connections handed to a worker (served to completion or still live).
    pub accepted: u64,
    /// Connections turned away because `workers + queue_depth` were in use.
    pub rejected_busy: u64,
    /// Request lines that exceeded `max_line_bytes`.
    pub oversized_frames: u64,
    /// Requests answered (ok or error), across all sessions.
    pub requests: u64,
}

struct NetShared {
    service: Arc<DslogService>,
    opts: ServeOptions,
    /// Accepted-but-unclaimed sockets; bounded by `opts.queue_depth`
    /// (admission control happens in the acceptor, not here). Rank
    /// `net.queue` (5) — never co-held with any service lock: the guard
    /// is dropped before `serve_session` runs.
    queue: Mutex<VecDeque<TcpStream>>,
    queue_cv: Condvar,
    /// Sessions currently inside a worker. Written under `queue`'s lock
    /// (claim) so the acceptor's admission check sees a consistent
    /// queued+busy total; the end-of-session decrement is lock-free.
    busy: AtomicU64,
    stop: AtomicBool,
    accepted: AtomicU64,
    rejected_busy: AtomicU64,
    oversized_frames: AtomicU64,
    requests: AtomicU64,
}

impl NetShared {
    fn stats(&self) -> NetStats {
        NetStats {
            accepted: self.accepted.load(Ordering::Relaxed),
            rejected_busy: self.rejected_busy.load(Ordering::Relaxed),
            oversized_frames: self.oversized_frames.load(Ordering::Relaxed),
            requests: self.requests.load(Ordering::Relaxed),
        }
    }
}

/// A running TCP front-end over a shared [`DslogService`]. Dropping the
/// handle (or calling [`join`](NetServer::join) after a client's
/// `shutdown`) stops the acceptor and all workers; the service itself is
/// NOT shut down — the owner decides when to run the final commit via
/// [`DslogService::shutdown`].
pub struct NetServer {
    shared: Arc<NetShared>,
    local_addr: SocketAddr,
    acceptor: Option<std::thread::JoinHandle<()>>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl NetServer {
    /// Bind `addr` (e.g. `"127.0.0.1:7171"`, or port `0` for an
    /// OS-assigned port) and start the acceptor + worker pool.
    pub fn spawn(
        service: Arc<DslogService>,
        addr: impl ToSocketAddrs,
        opts: ServeOptions,
    ) -> Result<Self> {
        let listener = TcpListener::bind(addr)
            .map_err(|e| crate::error::DslogError::io("bind listener", e))?;
        let local_addr = listener
            .local_addr()
            .map_err(|e| crate::error::DslogError::io("resolve bound address", e))?;
        let shared = Arc::new(NetShared {
            service,
            opts,
            queue: Mutex::new(&ranks::NET_QUEUE, VecDeque::new()),
            queue_cv: Condvar::new(),
            busy: AtomicU64::new(0),
            stop: AtomicBool::new(false),
            accepted: AtomicU64::new(0),
            rejected_busy: AtomicU64::new(0),
            oversized_frames: AtomicU64::new(0),
            requests: AtomicU64::new(0),
        });
        // Sanctioned worker pool (see lint-allow.txt): every handle is
        // joined by NetServer::join/Drop. A failed spawn (thread limit,
        // OOM) aborts startup cleanly — already-started workers see the
        // stop flag and exit.
        let mut workers = Vec::with_capacity(opts.workers.max(1));
        for i in 0..opts.workers.max(1) {
            let shared_for_worker = Arc::clone(&shared);
            let handle = std::thread::Builder::new()
                .name(format!("dslog-net-worker-{i}"))
                .spawn(move || worker_loop(&shared_for_worker));
            match handle {
                Ok(h) => workers.push(h),
                Err(e) => {
                    stop_workers(&shared, &mut workers);
                    return Err(crate::error::DslogError::io("spawn worker thread", e));
                }
            }
        }
        let acceptor = {
            let shared_for_acceptor = Arc::clone(&shared);
            let handle = std::thread::Builder::new()
                .name("dslog-net-accept".to_string())
                .spawn(move || accept_loop(&listener, &shared_for_acceptor));
            match handle {
                Ok(h) => h,
                Err(e) => {
                    stop_workers(&shared, &mut workers);
                    return Err(crate::error::DslogError::io("spawn acceptor thread", e));
                }
            }
        };
        Ok(Self {
            shared,
            local_addr,
            acceptor: Some(acceptor),
            workers,
        })
    }

    /// The bound address (resolves port `0` to the real port).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Lifetime counters so far.
    pub fn stats(&self) -> NetStats {
        self.shared.stats()
    }

    /// Whether a `shutdown` request has been received (or
    /// [`stop`](NetServer::stop) called).
    pub fn is_stopped(&self) -> bool {
        self.shared.stop.load(Ordering::Acquire)
    }

    /// Ask the server to stop, without waiting for the threads.
    pub fn stop(&self) {
        request_stop(&self.shared, self.local_addr);
    }

    /// Block until the server stops — a client sends `shutdown`, or
    /// another thread calls [`stop`](NetServer::stop) — then join every
    /// thread and return the lifetime stats. Sessions already admitted
    /// are served to their next poll tick; queued-but-unclaimed sockets
    /// are closed unserved.
    pub fn join(mut self) -> NetStats {
        self.join_threads();
        self.shared.stats()
    }

    fn join_threads(&mut self) {
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
            for worker in self.workers.drain(..) {
                let _ = worker.join();
            }
        }
    }
}

impl Drop for NetServer {
    fn drop(&mut self) {
        self.stop();
        self.join_threads();
    }
}

/// Abort a partially-started pool: flip the stop flag, wake everyone,
/// and join the workers that did start.
fn stop_workers(shared: &NetShared, workers: &mut Vec<std::thread::JoinHandle<()>>) {
    shared.stop.store(true, Ordering::Release);
    shared.queue_cv.notify_all();
    for worker in workers.drain(..) {
        let _ = worker.join();
    }
}

/// Flip the stop flag and unblock everyone: workers via the condvar,
/// the acceptor via a throwaway self-connection (blocking `accept` has
/// no portable cancellation — a dead-end connect is the std-only way to
/// wake it).
fn request_stop(shared: &NetShared, addr: SocketAddr) {
    if shared.stop.swap(true, Ordering::AcqRel) {
        return;
    }
    shared.queue_cv.notify_all();
    let _ = TcpStream::connect_timeout(&addr, Duration::from_secs(1));
}

fn accept_loop(listener: &TcpListener, shared: &NetShared) {
    loop {
        let stream = match listener.accept() {
            Ok((stream, _)) => stream,
            Err(_) if shared.stop.load(Ordering::Acquire) => break,
            Err(_) => continue,
        };
        if shared.stop.load(Ordering::Acquire) {
            break; // the wake-up self-connection lands here
        }
        // Admission control: waiting + in-flight sessions together are
        // bounded by `workers + queue_depth`; everything past that is
        // turned away now rather than left to pile up.
        let cap = shared.opts.workers.max(1) + shared.opts.queue_depth;
        let mut queue = shared.queue.lock();
        if queue.len() as u64 + shared.busy.load(Ordering::Acquire) >= cap as u64 {
            drop(queue);
            shared.rejected_busy.fetch_add(1, Ordering::Relaxed);
            reject_busy(stream, shared.opts);
            continue;
        }
        queue.push_back(stream);
        drop(queue);
        shared.queue_cv.notify_one();
    }
    // Unserved queue entries are closed by the drop below.
    shared.queue.lock().clear();
    shared.queue_cv.notify_all();
}

/// Best-effort busy response on a connection that was never admitted.
fn reject_busy(mut stream: TcpStream, opts: ServeOptions) {
    let _ = stream.set_write_timeout(Some(opts.write_timeout.min(Duration::from_secs(1))));
    let _ = stream.write_all(
        b"{\"ok\":false,\"error\":\"server busy: connection limit reached, retry later\"}\n",
    );
}

fn worker_loop(shared: &NetShared) {
    loop {
        let stream = {
            let mut queue = shared.queue.lock();
            loop {
                if let Some(stream) = queue.pop_front() {
                    shared.busy.fetch_add(1, Ordering::Release);
                    break stream;
                }
                if shared.stop.load(Ordering::Acquire) {
                    return;
                }
                queue = shared.queue_cv.wait(queue);
            }
        };
        shared.accepted.fetch_add(1, Ordering::Relaxed);
        let _ = serve_session(stream, shared);
        shared.busy.fetch_sub(1, Ordering::Release);
        if shared.stop.load(Ordering::Acquire) {
            return;
        }
    }
}

/// What one request line asked the session loop to do next.
enum SessionFlow {
    Continue,
    CloseSession,
    StopServer,
}

/// Drive one client connection to completion: read request lines (capped,
/// polled), execute, respond one JSON line each. Returns on EOF, `quit`,
/// `shutdown`, transport errors, or server stop.
fn serve_session(stream: TcpStream, shared: &NetShared) -> std::io::Result<()> {
    // Operation-log attribution for this session's mutating commands.
    let actor = stream
        .peer_addr()
        .map_or_else(|_| "net".to_string(), |a| format!("net:{a}"));
    stream.set_read_timeout(Some(shared.opts.poll_interval))?;
    stream.set_write_timeout(Some(shared.opts.write_timeout))?;
    stream.set_nodelay(true).ok(); // request/response; don't batch
    let mut writer = stream.try_clone()?;
    let mut reader = BufReader::new(stream);
    let mut line = Vec::new();
    loop {
        line.clear();
        match read_line_bounded(&mut reader, shared.opts.max_line_bytes, &mut line) {
            Ok(LineRead::Eof) => return Ok(()),
            Ok(LineRead::TimedOut) => {
                if shared.stop.load(Ordering::Acquire) {
                    return Ok(());
                }
                continue;
            }
            Ok(LineRead::TooLong) => {
                shared.oversized_frames.fetch_add(1, Ordering::Relaxed);
                shared.requests.fetch_add(1, Ordering::Relaxed);
                let msg = json_err(&format!(
                    "request line exceeds {} bytes; closing connection",
                    shared.opts.max_line_bytes
                ));
                let _ = writeln(&mut writer, &msg);
                return Ok(()); // cannot resync mid-frame: drop the session
            }
            Ok(LineRead::Line) => {}
            Err(e) => return Err(e),
        }
        let text = String::from_utf8_lossy(&line);
        let text = text.trim();
        if text.is_empty() || text.starts_with('#') {
            continue;
        }
        shared.requests.fetch_add(1, Ordering::Relaxed);
        let (response, flow) = execute(&shared.service, text, &actor);
        writeln(&mut writer, &response)?;
        match flow {
            SessionFlow::Continue => {}
            SessionFlow::CloseSession => return Ok(()),
            SessionFlow::StopServer => {
                let addr = writer.local_addr()?;
                request_stop(shared, addr);
                return Ok(());
            }
        }
    }
}

enum LineRead {
    Line,
    Eof,
    TooLong,
    TimedOut,
}

/// Read one `\n`-terminated line into `buf`, never retaining more than
/// `max` bytes. A frame that hits the cap reports [`LineRead::TooLong`]
/// without waiting for its newline (the overflow is left unread — the
/// caller closes the connection). A read timeout with NO partial data is
/// a poll tick; mid-line timeouts keep waiting so slow-but-live writers
/// aren't corrupted by the poll interval.
fn read_line_bounded(
    reader: &mut BufReader<TcpStream>,
    max: usize,
    buf: &mut Vec<u8>,
) -> std::io::Result<LineRead> {
    loop {
        let chunk = match reader.fill_buf() {
            Ok(chunk) => chunk,
            Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                if buf.is_empty() {
                    return Ok(LineRead::TimedOut);
                }
                continue;
            }
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        };
        if chunk.is_empty() {
            return Ok(if buf.is_empty() {
                LineRead::Eof
            } else {
                LineRead::Line // unterminated final line
            });
        }
        match chunk.iter().position(|&b| b == b'\n') {
            Some(pos) => {
                if buf.len() + pos > max {
                    return Ok(LineRead::TooLong);
                }
                buf.extend_from_slice(&chunk[..pos]);
                reader.consume(pos + 1);
                return Ok(LineRead::Line);
            }
            None => {
                let take = chunk.len();
                if buf.len() + take > max {
                    return Ok(LineRead::TooLong);
                }
                buf.extend_from_slice(chunk);
                reader.consume(take);
            }
        }
    }
}

fn writeln(writer: &mut TcpStream, line: &str) -> std::io::Result<()> {
    writer.write_all(line.as_bytes())?;
    writer.write_all(b"\n")?;
    writer.flush()
}

/// Execute one request line against the service. Always returns a
/// response (success or error JSON) plus what the session does next.
/// Mutating commands install `actor` as the operation-log attribution
/// before they run (last writer wins across concurrent sessions — the
/// label is advisory, not a serialization point).
fn execute(service: &DslogService, line: &str, actor: &str) -> (String, SessionFlow) {
    let mut parts = line.split_whitespace();
    let cmd = parts.next().unwrap_or_default();
    let args: Vec<&str> = parts.collect();
    if matches!(cmd, "define" | "ingest" | "commit") {
        service.set_actor(actor);
    }
    let response = match (cmd, args.as_slice()) {
        ("define", [spec]) => cmd_define(service, spec),
        ("ingest", [in_name, out_name, rows]) => cmd_ingest(service, in_name, out_name, rows),
        ("query", [path, cells]) => cmd_query(service, path, cells, false),
        ("query", [path, cells, "stats"]) => cmd_query(service, path, cells, true),
        ("query_batch", [path, queries]) => cmd_query_batch(service, path, queries, false),
        ("query_batch", [path, queries, "stats"]) => cmd_query_batch(service, path, queries, true),
        ("commit", []) => cmd_commit(service),
        ("stats", []) => Ok(render_stats(&service.stats())),
        ("history", []) => cmd_history(service),
        ("quit" | "exit", []) => {
            return (
                "{\"ok\":true,\"closing\":\"session\"}".to_string(),
                SessionFlow::CloseSession,
            )
        }
        ("shutdown", []) => {
            return (
                "{\"ok\":true,\"closing\":\"server\"}".to_string(),
                SessionFlow::StopServer,
            )
        }
        _ => Err(format!(
            "bad request `{line}`; expected define/ingest/query/query_batch/commit/stats/history/quit/shutdown"
        )),
    };
    (
        response.unwrap_or_else(|e| json_err(&e)),
        SessionFlow::Continue,
    )
}

fn cmd_define(service: &DslogService, spec: &str) -> std::result::Result<String, String> {
    let (name, shape) = parse_array_spec(spec)?;
    service
        .define_array(&name, &shape)
        .map_err(|e| e.to_string())?;
    let dims: Vec<String> = shape.iter().map(usize::to_string).collect();
    Ok(format!(
        "{{\"ok\":true,\"defined\":{},\"shape\":[{}]}}",
        json_str(&name),
        dims.join(",")
    ))
}

fn cmd_ingest(
    service: &DslogService,
    in_name: &str,
    out_name: &str,
    rows: &str,
) -> std::result::Result<String, String> {
    let (in_shape, out_shape) = service
        .with_db(|db| {
            Ok::<_, crate::error::DslogError>((
                db.storage().array(in_name)?.shape.clone(),
                db.storage().array(out_name)?.shape.clone(),
            ))
        })
        .map_err(|e| e.to_string())?;
    let table = parse_inline_rows(rows, out_shape.len(), in_shape.len())?;
    let report = service
        .ingest_batch(vec![IngestJob::new(in_name, out_name, table)])
        .map_err(|e| e.to_string())?;
    Ok(render_batch(&report))
}

fn cmd_query(
    service: &DslogService,
    path_spec: &str,
    cells_spec: &str,
    with_stats: bool,
) -> std::result::Result<String, String> {
    let path: Vec<&str> = path_spec.split(',').map(str::trim).collect();
    let cells = parse_cells(cells_spec)?;
    if cells.is_empty() {
        return Err("no query cells given".to_string());
    }
    let result = service.query(&path, &cells).map_err(|e| e.to_string())?;
    let mut out = format!(
        "{{\"ok\":true,\"hops\":{},\"cells\":{},\"boxes\":",
        result.hops,
        result.cells.volume()
    );
    render_boxes(&mut out, &result);
    if with_stats {
        out.push_str(",\"stats\":");
        out.push_str(&render_query_stats(&result.stats));
    }
    out.push('}');
    Ok(out)
}

fn cmd_query_batch(
    service: &DslogService,
    path_spec: &str,
    queries_spec: &str,
    with_stats: bool,
) -> std::result::Result<String, String> {
    let path: Vec<&str> = path_spec.split(',').map(str::trim).collect();
    let mut queries = Vec::new();
    for spec in queries_spec.split('|') {
        let cells = parse_cells(spec)?;
        if cells.is_empty() {
            return Err("empty query in batch".to_string());
        }
        queries.push(cells);
    }
    if queries.is_empty() {
        return Err("no queries given".to_string());
    }
    let results = service
        .query_batch(&path, &queries)
        .map_err(|e| e.to_string())?;
    // All batch members share one sweep, so hops/stats are batch-wide.
    let hops = results.first().map_or(0, |r| r.hops);
    let mut out = format!("{{\"ok\":true,\"hops\":{hops},\"results\":[");
    for (i, result) in results.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!("{{\"cells\":{},\"boxes\":", result.cells.volume()));
        render_boxes(&mut out, result);
        out.push('}');
    }
    out.push(']');
    if with_stats {
        out.push_str(",\"stats\":");
        out.push_str(&render_query_stats(
            results.first().map_or(&QueryStats::default(), |r| &r.stats),
        ));
    }
    out.push('}');
    Ok(out)
}

/// Append `[[[lo,hi],...],...]` for the result's box set.
fn render_boxes(out: &mut String, result: &QueryResult) {
    out.push('[');
    for (i, b) in result.cells.boxes().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('[');
        for (j, ivl) in b.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            out.push_str(&format!("[{},{}]", ivl.lo, ivl.hi));
        }
        out.push(']');
    }
    out.push(']');
}

/// The `"stats"` object for `query ... stats` / `query_batch ... stats`.
fn render_query_stats(stats: &QueryStats) -> String {
    let plan = stats.plan.as_ref().map_or("off", |p| p.decision.label());
    let mut out = format!(
        "{{\"rows_probed\":{},\"rows_matched\":{},\"plan\":{},\"hops\":[",
        stats.hops.iter().map(|h| h.rows_probed).sum::<usize>(),
        stats.hops.iter().map(|h| h.rows_matched).sum::<usize>(),
        json_str(plan),
    );
    for (i, h) in stats.hops.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"probed\":{},\"matched\":{},\"boxes\":{},\"indexed\":{},\"threads\":{}}}",
            h.rows_probed, h.rows_matched, h.boxes_emitted, h.used_index, h.threads
        ));
    }
    out.push_str("]}");
    out
}

fn cmd_commit(service: &DslogService) -> std::result::Result<String, String> {
    let report = service.commit().map_err(|e| e.to_string())?;
    Ok(render_commit(&report))
}

/// The bound directory's operation log, oldest record first.
fn cmd_history(service: &DslogService) -> std::result::Result<String, String> {
    let records = service.history().map_err(|e| e.to_string())?;
    let mut out = format!("{{\"ok\":true,\"records\":{},\"log\":[", records.len());
    for (i, r) in records.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"op\":{},\"timestamp_ms\":{},\"actor\":{},\"kind\":{},\"detail\":{},\
             \"gen_before\":{},\"gen_after\":{}}}",
            r.op_id,
            r.timestamp_ms,
            json_str(&r.actor),
            json_str(r.kind.name()),
            json_str(&r.kind.describe()),
            r.gen_before,
            r.gen_after
        ));
    }
    out.push_str("]}");
    Ok(out)
}

fn render_commit(report: &CommitReport) -> String {
    format!(
        "{{\"ok\":true,\"generation\":{},\"incremental\":{},\"files_written\":{},\
         \"files_reused\":{},\"bytes_written\":{}}}",
        report.generation,
        report.incremental,
        report.files_written,
        report.files_reused,
        report.bytes_written
    )
}

fn render_batch(report: &BatchReport) -> String {
    let mut out = format!(
        "{{\"ok\":true,\"edges\":{},\"rows\":{},\"pending_edges\":{}",
        report.edges, report.rows, report.pending_edges
    );
    match &report.auto_commit {
        Some(Ok(commit)) => {
            out.push_str(",\"auto_commit\":");
            out.push_str(&render_commit(commit));
        }
        Some(Err(e)) => {
            out.push_str(",\"auto_commit\":{\"ok\":false,\"error\":");
            out.push_str(&json_str(&e.to_string()));
            out.push('}');
        }
        None => {}
    }
    out.push('}');
    out
}

fn render_stats(s: &ServiceStats) -> String {
    format!(
        "{{\"ok\":true,\"arrays\":{},\"edges\":{},\"pending_edges\":{},\"edges_ingested\":{},\
         \"queries\":{},\"commits\":{},\"auto_commits\":{},\"failed_commits\":{},\
         \"last_commit_error\":{},\"epoch\":{},\"generation\":{},\"compactions\":{},\
         \"config\":{}}}",
        s.arrays,
        s.edges,
        s.pending_edges,
        s.edges_ingested,
        s.queries,
        s.commits,
        s.auto_commits,
        s.failed_commits,
        s.last_commit_error
            .as_deref()
            .map_or("null".to_string(), json_str),
        s.epoch,
        s.generation.map_or("null".to_string(), |g| g.to_string()),
        s.compactions,
        render_config(&s.config)
    )
}

/// The effective served-database configuration as a JSON object (the
/// `"config"` field of a `stats` response).
fn render_config(c: &crate::api::DslogConfig) -> String {
    format!(
        "{{\"lazy\":{},\"as_of\":{},\"gzip\":{},\"wal_actor\":{},\"wal_retention\":{},\
         \"compress\":{{\"fast\":{},\"parallel\":{}}},\
         \"query\":{{\"merge\":{},\"use_index\":{},\"parallel\":{},\"use_planner\":{}}},\
         \"composite\":{{\"enabled\":{},\"hit_threshold\":{}}},\
         \"auto_compact_generations\":{}}}",
        c.lazy,
        c.as_of.map_or("null".to_string(), |g| g.to_string()),
        c.gzip.map_or("null".to_string(), |g| g.to_string()),
        json_str(&c.wal_actor),
        c.wal_retention,
        c.compress.fast,
        c.compress.parallel,
        c.query.merge,
        c.query.use_index,
        c.query.parallel,
        c.query.use_planner,
        c.composite_policy.enabled,
        c.composite_policy.hit_threshold,
        c.maintenance
            .auto_compact_generations
            .map_or("null".to_string(), |g| g.to_string())
    )
}

/// `{"ok":false,"error":...}` with the message JSON-escaped.
fn json_err(message: &str) -> String {
    format!("{{\"ok\":false,\"error\":{}}}", json_str(message))
}

/// Minimal JSON string encoder (quotes, backslash, control chars).
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// `NAME:3x2` → `("NAME", [3, 2])`. Scalar arrays use `NAME:1`.
fn parse_array_spec(spec: &str) -> std::result::Result<(String, Vec<usize>), String> {
    let (name, dims) = spec
        .split_once(':')
        .ok_or_else(|| format!("array spec `{spec}` must be NAME:3x2"))?;
    if name.is_empty() {
        return Err(format!("array spec `{spec}` has an empty name"));
    }
    let shape = dims
        .split('x')
        .map(|d| {
            d.parse::<usize>()
                .ok()
                .filter(|&d| d > 0)
                .ok_or_else(|| format!("bad dimension `{d}` in array spec `{spec}`"))
        })
        .collect::<std::result::Result<Vec<_>, _>>()?;
    Ok((name.to_string(), shape))
}

/// `1;2,3` → `[[1], [2, 3]]` (rows of `,`-separated indices).
fn parse_cells(spec: &str) -> std::result::Result<Vec<Vec<i64>>, String> {
    spec.split(';')
        .filter(|cell| !cell.trim().is_empty())
        .map(|cell| {
            cell.split(',')
                .map(|v| {
                    v.trim()
                        .parse::<i64>()
                        .map_err(|_| format!("bad index `{}` in `{spec}`", v.trim()))
                })
                .collect()
        })
        .collect()
}

/// Inline lineage rows: `;`-separated rows of `,`-separated indices,
/// output attributes first then input attributes (the CSV row layout).
fn parse_inline_rows(
    spec: &str,
    out_arity: usize,
    in_arity: usize,
) -> std::result::Result<LineageTable, String> {
    let rows = parse_cells(spec)?;
    if rows.is_empty() {
        return Err("ingest needs at least one row".to_string());
    }
    let mut table = LineageTable::new(out_arity, in_arity);
    for row in &rows {
        if row.len() != out_arity + in_arity {
            return Err(format!(
                "row has {} values; edge needs {} output + {} input indices",
                row.len(),
                out_arity,
                in_arity
            ));
        }
        table.push_row(row);
    }
    Ok(table)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::Dslog;
    use crate::service::AutoCommitPolicy;

    fn spawn_test_server(opts: ServeOptions) -> (Arc<DslogService>, NetServer) {
        let mut db = Dslog::new();
        db.define_array("A", &[8]).unwrap();
        db.define_array("B", &[8]).unwrap();
        let service = Arc::new(DslogService::new(db, AutoCommitPolicy::manual()));
        let server = NetServer::spawn(Arc::clone(&service), "127.0.0.1:0", opts).unwrap();
        (service, server)
    }

    fn connect(addr: SocketAddr) -> (BufReader<TcpStream>, TcpStream) {
        let stream = TcpStream::connect(addr).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(20)))
            .unwrap();
        let writer = stream.try_clone().unwrap();
        (BufReader::new(stream), writer)
    }

    fn roundtrip(reader: &mut BufReader<TcpStream>, writer: &mut TcpStream, req: &str) -> String {
        writer.write_all(req.as_bytes()).unwrap();
        writer.write_all(b"\n").unwrap();
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        line.trim().to_string()
    }

    #[test]
    fn session_roundtrip_and_shutdown() {
        let (_service, server) = spawn_test_server(ServeOptions {
            workers: 2,
            ..ServeOptions::default()
        });
        let (mut reader, mut writer) = connect(server.local_addr());
        assert_eq!(
            roundtrip(&mut reader, &mut writer, "define C:8"),
            "{\"ok\":true,\"defined\":\"C\",\"shape\":[8]}"
        );
        let resp = roundtrip(&mut reader, &mut writer, "ingest A B 0,1;1,2;2,3");
        assert!(
            resp.contains("\"ok\":true") && resp.contains("\"rows\":3"),
            "{resp}"
        );
        let resp = roundtrip(&mut reader, &mut writer, "query B,A 1");
        assert!(resp.contains("\"boxes\":[[[2,2]]]"), "{resp}");
        // Errors keep the session alive.
        let resp = roundtrip(&mut reader, &mut writer, "query NOPE,A 1");
        assert!(resp.starts_with("{\"ok\":false"), "{resp}");
        let resp = roundtrip(&mut reader, &mut writer, "stats");
        assert!(resp.contains("\"edges\":1"), "{resp}");
        // The effective configuration rides along as a "config" object.
        assert!(
            resp.contains("\"config\":{\"lazy\":")
                && resp.contains("\"auto_compact_generations\":"),
            "{resp}"
        );
        assert_eq!(
            roundtrip(&mut reader, &mut writer, "shutdown"),
            "{\"ok\":true,\"closing\":\"server\"}"
        );
        let stats = server.join();
        assert_eq!(stats.accepted, 1);
        assert!(stats.requests >= 6);
    }

    #[test]
    fn query_batch_and_stats_responses() {
        let (_service, server) = spawn_test_server(ServeOptions {
            workers: 1,
            ..ServeOptions::default()
        });
        let (mut reader, mut writer) = connect(server.local_addr());
        let resp = roundtrip(&mut reader, &mut writer, "ingest A B 0,1;1,2;2,3");
        assert!(resp.contains("\"ok\":true"), "{resp}");
        // Batch results come back in request order, one entry per query.
        let resp = roundtrip(&mut reader, &mut writer, "query_batch B,A 1|2|7");
        assert!(
            resp.contains("\"results\":[{\"cells\":1,\"boxes\":[[[2,2]]]},{\"cells\":1,\"boxes\":[[[3,3]]]},{\"cells\":0,\"boxes\":[]}]"),
            "{resp}"
        );
        // The stats word appends a stats object with a planner label.
        let resp = roundtrip(&mut reader, &mut writer, "query B,A 1 stats");
        assert!(resp.contains("\"boxes\":[[[2,2]]]"), "{resp}");
        assert!(
            resp.contains("\"stats\":{\"rows_probed\":") && resp.contains("\"plan\":\""),
            "{resp}"
        );
        let resp = roundtrip(&mut reader, &mut writer, "query_batch B,A 1|2 stats");
        assert!(resp.contains("\"stats\":{"), "{resp}");
        // Malformed batches are rejected without killing the session.
        let resp = roundtrip(&mut reader, &mut writer, "query_batch B,A 1||2");
        assert!(resp.starts_with("{\"ok\":false"), "{resp}");
        assert!(roundtrip(&mut reader, &mut writer, "stats").contains("\"ok\":true"));
        server.stop();
        server.join();
    }

    #[test]
    fn oversized_frame_rejected_and_connection_closed() {
        let (_service, server) = spawn_test_server(ServeOptions {
            workers: 1,
            max_line_bytes: 64,
            ..ServeOptions::default()
        });
        let (mut reader, mut writer) = connect(server.local_addr());
        let big = format!("query B,A {}", "1;".repeat(200));
        let resp = roundtrip(&mut reader, &mut writer, &big);
        assert!(resp.contains("exceeds 64 bytes"), "{resp}");
        let mut end = String::new();
        assert_eq!(reader.read_line(&mut end).unwrap(), 0, "expected EOF");
        assert_eq!(server.stats().oversized_frames, 1);
        server.stop();
        server.join();
    }

    #[test]
    fn history_and_failure_fields_over_the_wire() {
        let dir = std::env::temp_dir().join(format!("dslog-net-hist-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mut db = Dslog::new();
        db.define_array("A", &[8]).unwrap();
        db.define_array("B", &[8]).unwrap();
        db.save(&dir, false).unwrap();
        let service = Arc::new(DslogService::new(db, AutoCommitPolicy::manual()));
        let server = NetServer::spawn(
            Arc::clone(&service),
            "127.0.0.1:0",
            ServeOptions {
                workers: 1,
                ..ServeOptions::default()
            },
        )
        .unwrap();
        let (mut reader, mut writer) = connect(server.local_addr());
        let resp = roundtrip(&mut reader, &mut writer, "ingest A B 0,1;1,2");
        assert!(resp.contains("\"ok\":true"), "{resp}");
        let resp = roundtrip(&mut reader, &mut writer, "commit");
        assert!(resp.contains("\"ok\":true"), "{resp}");
        let resp = roundtrip(&mut reader, &mut writer, "history");
        assert!(resp.contains("\"ok\":true"), "{resp}");
        assert!(resp.contains("\"kind\":\"ingest\""), "{resp}");
        assert!(resp.contains("\"kind\":\"commit\""), "{resp}");
        // The ingest came in over the wire, so its log record is
        // attributed to the network peer.
        assert!(resp.contains("\"actor\":\"net:"), "{resp}");
        let resp = roundtrip(&mut reader, &mut writer, "stats");
        assert!(resp.contains("\"failed_commits\":0"), "{resp}");
        assert!(resp.contains("\"last_commit_error\":null"), "{resp}");
        server.stop();
        server.join();
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn busy_rejection_past_admission_bound() {
        let (_service, server) = spawn_test_server(ServeOptions {
            workers: 1,
            queue_depth: 0,
            ..ServeOptions::default()
        });
        // Occupy the only worker with a live session.
        let (mut r1, mut w1) = connect(server.local_addr());
        assert!(roundtrip(&mut r1, &mut w1, "stats").contains("\"ok\":true"));
        // Next connection exceeds workers + queue_depth and is turned away.
        let deadline = std::time::Instant::now() + Duration::from_secs(20);
        let busy = loop {
            let (mut r2, _w2) = connect(server.local_addr());
            let mut line = String::new();
            r2.read_line(&mut line).unwrap();
            if line.contains("server busy") {
                break line;
            }
            // The first session may not have been claimed yet; retry.
            assert!(std::time::Instant::now() < deadline, "never saw busy");
            std::thread::sleep(Duration::from_millis(20));
        };
        assert!(busy.contains("\"ok\":false"), "{busy}");
        assert!(server.stats().rejected_busy >= 1);
        // The admitted session still works.
        assert!(roundtrip(&mut r1, &mut w1, "stats").contains("\"ok\":true"));
        server.stop();
        server.join();
    }
}
