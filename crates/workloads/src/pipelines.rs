//! Workflow plumbing plus the paper's three hand-built workflows
//! (Table VIII and the ResNet block of Fig. 8).
//!
//! A [`Pipeline`] is a DAG of named arrays connected by captured lineage
//! hops; it can be registered into a [`Dslog`] instance (in-situ path) or
//! handed to the baseline formats as uncompressed tables.

use crate::{relops, saliency, virat};
use dslog::api::{Dslog, TableCapture};
use dslog::table::LineageTable;
use dslog_array::{image, nn, Array};

/// One captured lineage edge between two named arrays.
#[derive(Debug, Clone)]
pub struct Hop {
    /// Contributing (input) array name.
    pub in_array: String,
    /// Result (output) array name.
    pub out_array: String,
    /// The captured relation.
    pub lineage: LineageTable,
}

/// A workflow: named arrays, lineage hops, and the main query path.
#[derive(Debug, Clone, Default)]
pub struct Pipeline {
    /// Array name → shape, in creation order.
    pub arrays: Vec<(String, Vec<usize>)>,
    /// All captured hops (multi-input steps contribute several).
    pub hops: Vec<Hop>,
    /// The chain of array names a forward query walks (first = source).
    pub main_path: Vec<String>,
}

impl Pipeline {
    /// Start a pipeline with one source array.
    pub fn new(source: &str, shape: &[usize]) -> Self {
        Self {
            arrays: vec![(source.to_string(), shape.to_vec())],
            hops: Vec::new(),
            main_path: vec![source.to_string()],
        }
    }

    /// Record a step producing `out` from `input` (extends the main path if
    /// `input` is its tail).
    pub fn push_step(&mut self, input: &str, out: &str, shape: &[usize], lineage: LineageTable) {
        if !self.arrays.iter().any(|(n, _)| n == out) {
            self.arrays.push((out.to_string(), shape.to_vec()));
        }
        self.hops.push(Hop {
            in_array: input.to_string(),
            out_array: out.to_string(),
            lineage,
        });
        if self.main_path.last().map(String::as_str) == Some(input) {
            self.main_path.push(out.to_string());
        }
    }

    /// Record a side input (e.g. the second operand of a join / residual).
    pub fn add_array(&mut self, name: &str, shape: &[usize]) {
        if !self.arrays.iter().any(|(n, _)| n == name) {
            self.arrays.push((name.to_string(), shape.to_vec()));
        }
    }

    /// Register every array and hop into a DSLog instance.
    pub fn register_into(&self, db: &mut Dslog) -> dslog::Result<()> {
        for (name, shape) in &self.arrays {
            db.define_array(name, shape)?;
        }
        for hop in &self.hops {
            db.add_lineage(
                &hop.in_array,
                &hop.out_array,
                &TableCapture::new(hop.lineage.clone()),
            )?;
        }
        Ok(())
    }

    /// The uncompressed hop tables along the main path, in path order,
    /// with the direction each hop is traversed (always forward here).
    pub fn main_path_tables(&self) -> Vec<&LineageTable> {
        self.main_path
            .windows(2)
            .map(|w| {
                &self
                    .hops
                    .iter()
                    .find(|h| h.in_array == w[0] && h.out_array == w[1])
                    .expect("main path hop")
                    .lineage
            })
            .collect()
    }

    /// Shape of a named array.
    pub fn shape_of(&self, name: &str) -> &[usize] {
        &self
            .arrays
            .iter()
            .find(|(n, _)| n == name)
            .expect("array")
            .1
    }

    /// Total cells of the source array.
    pub fn source_cells(&self) -> usize {
        self.shape_of(&self.main_path[0]).iter().product()
    }
}

/// The image workflow of Table VIII(A):
/// resize → luminosity → rotate 90° → horizontal flip → LIME on a detector.
///
/// `side` controls the frame size (the paper resizes to 416×416; the
/// default harness scale keeps laptop latencies sane — ratios are the
/// reproduction target).
pub fn image_workflow(side: usize, seed: u64) -> Pipeline {
    let frame = virat::synthetic_frame(side * 2, side * 2, seed);
    let mut p = Pipeline::new("frame", frame.shape());

    let r1 = image::resize(&frame, side, side);
    p.push_step("frame", "resized", r1.output.shape(), r1.lineage[0].clone());

    let r2 = image::luminosity(&r1.output, 1.2);
    p.push_step(
        "resized",
        "bright",
        r2.output.shape(),
        r2.lineage[0].clone(),
    );

    let r3 = image::rotate90(&r2.output);
    p.push_step(
        "bright",
        "rotated",
        r3.output.shape(),
        r3.lineage[0].clone(),
    );

    let r4 = image::hflip(&r3.output);
    p.push_step(
        "rotated",
        "flipped",
        r4.output.shape(),
        r4.lineage[0].clone(),
    );

    let (detection, lineage) = saliency::lime_capture(&r4.output, 8, seed ^ 0x11ce);
    p.push_step("flipped", "detection", detection.shape(), lineage);
    p
}

/// The relational workflow of Table VIII(B):
/// inner join on `tconst` → drop NaN columns → add two columns →
/// one-hot encode `genres` → add a constant to one column.
pub fn relational_workflow(n_rows: usize, seed: u64) -> Pipeline {
    let tables = crate::imdb::generate(n_rows, seed);
    let mut p = Pipeline::new("basics", tables.basics.shape());
    p.add_array("episode", tables.episode.shape());

    // 1. Inner join on tconst (basics col 0, episode col 0).
    let j = relops::inner_join(&tables.basics, &tables.episode, 0, 0);
    p.push_step("basics", "joined", j.output.shape(), j.lineage[0].clone());
    p.hops.push(Hop {
        in_array: "episode".into(),
        out_array: "joined".into(),
        lineage: j.lineage[1].clone(),
    });

    // 2. Filter columns containing NaN.
    let f = relops::drop_nan_columns(&j.output);
    p.push_step("joined", "filtered", f.output.shape(), f.lineage[0].clone());

    // 3. Add two columns (startYear + runtime → appended).
    let a = relops::add_two_columns(&f.output, 2, 3);
    p.push_step("filtered", "summed", a.output.shape(), a.lineage[0].clone());

    // 4. One-hot encode genres (the genres code column).
    let o = relops::one_hot(&a.output, 4, crate::imdb::N_GENRES);
    p.push_step("summed", "onehot", o.output.shape(), o.lineage[0].clone());

    // 5. Add a constant to one column.
    let c = relops::add_constant(&o.output, 1, 7.0);
    p.push_step("onehot", "final", c.output.shape(), c.lineage[0].clone());
    p
}

/// The seven-step ResNet block of Fig. 8(C):
/// conv → BN → ReLU → conv → BN → residual add → ReLU.
pub fn resnet_workflow(side: usize, seed: u64) -> Pipeline {
    let fm = virat::synthetic_frame(side, side, seed);
    let mut p = Pipeline::new("input", fm.shape());

    let c1 = nn::conv2d_3x3(&fm, &nn::EDGE_KERNEL);
    p.push_step("input", "conv1", c1.output.shape(), c1.lineage[0].clone());

    let b1 = nn::batch_norm(&c1.output, 0.0, 1.0, 1.0, 0.0);
    p.push_step("conv1", "bn1", b1.output.shape(), b1.lineage[0].clone());

    let r1 = nn::relu(&b1.output);
    p.push_step("bn1", "relu1", r1.output.shape(), r1.lineage[0].clone());

    let c2 = nn::conv2d_3x3(&r1.output, &nn::EDGE_KERNEL);
    p.push_step("relu1", "conv2", c2.output.shape(), c2.lineage[0].clone());

    let b2 = nn::batch_norm(&c2.output, 0.0, 1.0, 1.0, 0.0);
    p.push_step("conv2", "bn2", b2.output.shape(), b2.lineage[0].clone());

    // Residual: add the block input back in.
    let add = nn::residual_add(&b2.output, &fm);
    p.push_step(
        "bn2",
        "residual",
        add.output.shape(),
        add.lineage[0].clone(),
    );
    p.hops.push(Hop {
        in_array: "input".into(),
        out_array: "residual".into(),
        lineage: add.lineage[1].clone(),
    });

    let r2 = nn::relu(&add.output);
    p.push_step(
        "residual",
        "output",
        r2.output.shape(),
        r2.lineage[0].clone(),
    );
    p
}

/// Convenience: `Array` of random values in [0, 1).
pub fn random_array(shape: &[usize], seed: u64) -> Array {
    use rand::{Rng, SeedableRng};
    let mut rng = rand::rngs::SmallRng::seed_from_u64(seed);
    Array::from_fn(shape, |_| rng.gen::<f64>())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn image_workflow_structure() {
        let p = image_workflow(16, 7);
        assert_eq!(p.main_path.len(), 6);
        assert_eq!(p.hops.len(), 5);
        assert_eq!(p.main_path[0], "frame");
        assert_eq!(p.main_path.last().unwrap(), "detection");
    }

    #[test]
    fn relational_workflow_structure() {
        let p = relational_workflow(60, 3);
        assert_eq!(p.main_path.len(), 6); // basics + 5 stage outputs
        assert_eq!(p.hops.len(), 6); // 5 main-path hops + the episode side
    }

    #[test]
    fn resnet_workflow_has_seven_steps() {
        let p = resnet_workflow(8, 1);
        assert_eq!(p.main_path.len(), 8, "7 steps along the main chain");
        assert_eq!(p.hops.len(), 8, "7 + the residual side hop");
    }

    #[test]
    fn register_and_query_image_pipeline() {
        let p = image_workflow(8, 9);
        let mut db = Dslog::new();
        p.register_into(&mut db).unwrap();
        // Forward query from the frame through the whole pipeline.
        let path: Vec<&str> = p.main_path.iter().map(String::as_str).collect();
        let r = db.prov_query(&path, &[vec![0, 0], vec![1, 1]]).unwrap();
        assert_eq!(r.hops, 5);
        // Backward too.
        let back_path: Vec<&str> = p.main_path.iter().rev().map(String::as_str).collect();
        let det_len = p.shape_of("detection")[0] as i64;
        let rb = db
            .prov_query(
                &back_path,
                &[(0..det_len).map(|i| vec![i]).collect::<Vec<_>>()[0].clone()],
            )
            .unwrap();
        let _ = rb;
    }
}
