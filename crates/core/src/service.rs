//! Concurrent ingest-while-query service layer, built on **epoch
//! snapshots**.
//!
//! The paper's workload is a long-lived pipeline: operations keep
//! registering lineage while analysts issue `prov_query` calls against
//! what is already stored. [`DslogService`] wraps a [`Dslog`] for exactly
//! that shape of traffic:
//!
//! - **Queries are wait-free with respect to writers.** The service
//!   publishes an immutable `Arc<Dslog>` snapshot; a query clones the
//!   `Arc` (a pointer copy under a momentary lock that writers also only
//!   hold for a pointer swap) and runs entirely against that snapshot.
//!   A query never waits on batch compression, on an install, or on
//!   commit file IO — there is no reader-blocks-behind-writer lock left
//!   in the serve path.
//! - **Writes build the next epoch on the side.** `define_array` and the
//!   install phase of [`ingest_batch`](DslogService::ingest_batch) clone
//!   the current snapshot's maps (pointer copies — the stored tables
//!   themselves are shared `Arc`s), mutate the clone, and publish it with
//!   an O(1) pointer swap. A failed write publishes nothing: readers can
//!   never observe a partial batch, and the documented "all of a batch or
//!   none of it" guarantee holds structurally, not by careful ordering.
//! - **Ingest is two-phase.** [`ingest_batch`](DslogService::ingest_batch)
//!   validates shapes and rejects duplicate edges against a snapshot,
//!   compresses the whole batch *outside any lock* via
//!   [`provrc::compress_batch_parallel_opts`], and then builds + swaps
//!   the next epoch under the writer lock (O(edges) pointer work).
//! - **Commits run against a pinned snapshot.** [`commit`](DslogService::commit)
//!   pairs the pending-edge counter with a snapshot under the writer lock
//!   (a momentary critical section), then drives [`Dslog::commit`] with
//!   no service lock held — ingest keeps installing *and* queries keep
//!   serving while the snapshot is written. Edges installed mid-commit
//!   are simply not in the pinned snapshot and stay pending. An
//!   [`AutoCommitPolicy`] can trigger commits automatically after a
//!   threshold of ingested edges and/or on a periodic timer thread.
//!
//! The generation model gives each *committed* snapshot its identity on
//! disk; the service's monotonically increasing **epoch** counter gives
//! each *published* in-memory snapshot its identity (surfaced via
//! [`ServiceStats::epoch`]).
//!
//! For serving this over TCP to many concurrent clients, see
//! [`crate::net`].
//!
//! ```
//! use dslog::service::{AutoCommitPolicy, DslogService, IngestJob};
//! use dslog::table::LineageTable;
//!
//! let dir = std::env::temp_dir().join(format!("svc-doc-{}", std::process::id()));
//! # let _ = std::fs::remove_dir_all(&dir);
//! let mut db = dslog::api::Dslog::new();
//! db.define_array("A", &[2]).unwrap();
//! db.define_array("B", &[2]).unwrap();
//! db.save(&dir, false).unwrap(); // bind for commits
//!
//! let service = DslogService::new(db, AutoCommitPolicy::every_edges(64));
//! let mut t = LineageTable::new(1, 1);
//! t.push_row(&[0, 1]);
//! t.push_row(&[1, 0]);
//! service
//!     .ingest_batch(vec![IngestJob::new("A", "B", t)])
//!     .unwrap();
//! let r = service.query(&["B", "A"], &[vec![0]]).unwrap();
//! assert!(r.cells.contains_cell(&[1]));
//! let (db, commit) = service.shutdown().expect("no refs remain"); // final commit, teardown
//! commit.unwrap();
//! assert_eq!(db.storage().n_edges(), 1);
//! # std::fs::remove_dir_all(&dir).unwrap();
//! ```

use crate::api::{Dslog, QueryResult};
use crate::error::{DslogError, Result};
use crate::provrc::{self, CompressJob};
use crate::storage::persist::CommitReport;
use crate::storage::Materialize;
use crate::table::{LineageTable, Orientation};
use dslog_sync::{ranks, Condvar, Mutex, RwLock};
use std::collections::HashSet;
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// When the service commits on its own.
///
/// Both triggers may be combined; [`AutoCommitPolicy::manual`] disables
/// both (only explicit [`DslogService::commit`] calls persist anything).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AutoCommitPolicy {
    /// Commit as soon as at least this many edges were ingested since the
    /// last commit (checked after every batch).
    pub edge_threshold: Option<u64>,
    /// Commit on this period from a background timer thread, skipping
    /// ticks with nothing pending.
    pub interval: Option<Duration>,
}

impl AutoCommitPolicy {
    /// No automatic commits.
    pub fn manual() -> Self {
        Self::default()
    }

    /// Commit whenever `n` or more edges are pending.
    pub fn every_edges(n: u64) -> Self {
        Self {
            edge_threshold: Some(n),
            ..Self::default()
        }
    }

    /// Commit every `interval` (if anything is pending).
    pub fn every(interval: Duration) -> Self {
        Self {
            interval: Some(interval),
            ..Self::default()
        }
    }
}

/// When the service runs background **compaction** (see
/// [`crate::storage::compact`]) on the database it serves.
///
/// The policy travels with the database: set it at open time through
/// [`crate::api::OpenOptions::maintenance`] (or later via
/// [`Dslog::reconfigure`]), and the service checks it after every
/// successful commit. Compaction runs on the committing thread under the
/// service commit lock — queries and ingest installs are never blocked
/// (they only touch the epoch-snapshot locks), and the storage layer's
/// own commit lock serializes it against concurrent explicit commits.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MaintenancePolicy {
    /// Compact once the bound directory has accreted this many committed
    /// generations since the last compaction (checked after each
    /// successful service commit). `None` disables background
    /// compaction; explicit [`Dslog::compact`] calls always work.
    pub auto_compact_generations: Option<u64>,
}

impl MaintenancePolicy {
    /// No background compaction (the default).
    pub fn manual() -> Self {
        Self::default()
    }

    /// Compact after every `n` committed generations (`n` is clamped to
    /// at least 1).
    pub fn every_generations(n: u64) -> Self {
        Self {
            auto_compact_generations: Some(n.max(1)),
        }
    }
}

/// One edge of an ingest batch: the uncompressed lineage relation for
/// `in_array → out_array` (both must already be defined).
#[derive(Debug, Clone)]
pub struct IngestJob {
    /// Input (source-of-contributions) array.
    pub in_array: String,
    /// Output (result) array.
    pub out_array: String,
    /// The raw lineage relation, output attributes first.
    pub lineage: LineageTable,
}

impl IngestJob {
    /// Convenience constructor.
    pub fn new(
        in_array: impl Into<String>,
        out_array: impl Into<String>,
        lineage: LineageTable,
    ) -> Self {
        Self {
            in_array: in_array.into(),
            out_array: out_array.into(),
            lineage,
        }
    }
}

/// What one [`DslogService::ingest_batch`] call did.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BatchReport {
    /// Edges installed by this batch.
    pub edges: usize,
    /// Raw lineage rows across the batch.
    pub rows: usize,
    /// Edges pending (ingested but not yet committed) after this batch.
    pub pending_edges: u64,
    /// Outcome of the auto-commit this batch triggered, if the edge
    /// threshold fired. `Some(Err(_))` means the batch installed fine but
    /// the commit failed (e.g. [`DslogError::NotBound`]); the edges stay
    /// pending for a later commit.
    pub auto_commit: Option<Result<CommitReport>>,
}

/// Monotonic service counters (see [`DslogService::stats`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServiceStats {
    /// Arrays currently defined.
    pub arrays: usize,
    /// Edges currently stored.
    pub edges: usize,
    /// Edges ingested since the last commit.
    pub pending_edges: u64,
    /// Total edges ingested through the service.
    pub edges_ingested: u64,
    /// Queries served.
    pub queries: u64,
    /// Commits driven through the service (manual + automatic).
    pub commits: u64,
    /// Commits triggered by the auto-commit policy.
    pub auto_commits: u64,
    /// Commits that failed (manual + automatic). Monotonic, never reset.
    pub failed_commits: u64,
    /// Error text of the most recent failed commit. Cleared back to
    /// `None` by the next successful commit, so `Some(_)` means the
    /// service is *currently* unable to persist.
    pub last_commit_error: Option<String>,
    /// In-memory snapshot epoch: bumped by every published write
    /// (`define_array`, installed batch). Identifies which snapshot the
    /// other fields describe.
    pub epoch: u64,
    /// Last committed generation of the bound directory (`None` if the
    /// wrapped database is unbound).
    pub generation: Option<u64>,
    /// Background compactions driven by the [`MaintenancePolicy`].
    pub compactions: u64,
    /// The effective configuration of the served database (rendered as a
    /// `"config"` object over the net protocol).
    pub config: crate::api::DslogConfig,
}

struct Shared {
    /// The current epoch snapshot. Readers clone the `Arc` under the
    /// momentary read side; writers hold the write side only for the
    /// pointer swap in [`Shared::publish`]. Nothing slow ever runs under
    /// this lock. Rank `service.current` (30).
    current: RwLock<Arc<Dslog>>,
    /// Published-snapshot counter (see [`ServiceStats::epoch`]).
    epoch: AtomicU64,
    /// Serializes epoch *builders* (define, batch install) and the
    /// commit prologue's (snapshot, pending-counter) pairing. Never held
    /// across compression or file IO. Rank `service.writer` (20).
    writer: Mutex<()>,
    /// Serializes service-level commits so the pending-edge accounting
    /// stays exact (the storage layer would serialize the file writes
    /// anyway, on its binding lock). Rank `service.commit` (10), flagged
    /// `io_safe`: holding it across the commit's file IO is the point.
    commit_lock: Mutex<()>,
    policy: AutoCommitPolicy,
    pending_edges: AtomicU64,
    edges_ingested: AtomicU64,
    queries: AtomicU64,
    commits: AtomicU64,
    auto_commits: AtomicU64,
    /// Background compactions driven by the maintenance policy.
    compactions: AtomicU64,
    /// Generation of the last background compaction (seeded with the
    /// bound generation at construction so a freshly opened service does
    /// not immediately compact). Plain atomic — no new lock rank.
    last_compact_gen: AtomicU64,
    /// Total commit failures (manual + automatic), monotonic.
    failed_commits: AtomicU64,
    /// Commit failures since the last success; drives the ticker's
    /// capped exponential backoff and resets to 0 on any successful
    /// commit.
    consecutive_failures: AtomicU32,
    /// Error text of the most recent failed commit (`None` once a
    /// commit succeeds again). Rank `service.error` (9): below the
    /// commit lock, so it is only ever taken with no other service lock
    /// held.
    last_commit_error: Mutex<Option<String>>,
    /// Ticker shutdown flag + wakeup. Rank `service.stop` (8): below the
    /// commit lock, so the ticker could even commit while holding it
    /// (it drops the guard first anyway).
    stop: Mutex<bool>,
    stop_cv: Condvar,
}

impl Shared {
    /// The current snapshot: a pointer clone under the momentary read
    /// side of the swap lock.
    fn snapshot(&self) -> Arc<Dslog> {
        Arc::clone(&self.current.read())
    }

    /// Swap in a new epoch. O(1) under the write side; callers hold the
    /// writer mutex so concurrent builders cannot leapfrog each other.
    fn publish(&self, db: Dslog) {
        *self.current.write() = Arc::new(db);
        self.epoch.fetch_add(1, Ordering::Release);
    }

    /// Commit a pinned snapshot. The (snapshot, pending) pair is taken
    /// under the writer mutex — installs (which also hold it) are
    /// excluded for that instant, so `pending` counts exactly the
    /// uncommitted edges the pinned snapshot contains. The commit IO
    /// itself runs with no service lock held: queries AND ingest installs
    /// proceed while the snapshot is written; edges installed meanwhile
    /// are absent from the pinned snapshot and stay pending.
    fn commit(&self, auto: bool) -> Result<CommitReport> {
        let outcome = {
            let _serialize = self.commit_lock.lock();
            let (snapshot, pending) = {
                let _excl = self.writer.lock();
                (self.snapshot(), self.pending_edges.load(Ordering::Acquire))
            };
            if auto {
                // Attribute the operation-log commit record to the
                // policy, not to whichever client last set the actor.
                snapshot.set_wal_actor("auto-commit");
            }
            let outcome = snapshot.commit();
            if outcome.is_ok() {
                self.pending_edges.fetch_sub(pending, Ordering::AcqRel);
                self.commits.fetch_add(1, Ordering::Relaxed);
                if auto {
                    self.auto_commits.fetch_add(1, Ordering::Relaxed);
                }
                // Maintenance rides the committing thread while the
                // service commit lock (rank 10, io_safe) is still held;
                // `compact` takes the storage commit lock (rank 40) —
                // a legal ascent, and queries never touch either.
                self.maybe_auto_compact(&snapshot);
            }
            drop(snapshot);
            outcome
        };
        // Failure bookkeeping runs with the commit lock released: the
        // error slot's rank (9) sits below `service.commit` (10), so it
        // must only ever be taken with no other service lock held.
        match &outcome {
            Ok(_) => {
                self.consecutive_failures.store(0, Ordering::Relaxed);
                *self.last_commit_error.lock() = None;
            }
            Err(e) => {
                self.failed_commits.fetch_add(1, Ordering::Relaxed);
                self.consecutive_failures.fetch_add(1, Ordering::Relaxed);
                *self.last_commit_error.lock() = Some(e.to_string());
            }
        }
        outcome
    }

    /// Run background compaction if the served database's
    /// [`MaintenancePolicy`] says the directory has accreted enough
    /// generations. Failures are swallowed (the next qualifying commit
    /// retries); success advances the compaction watermark.
    fn maybe_auto_compact(&self, db: &Dslog) {
        let Some(every) = db.maintenance_policy().auto_compact_generations else {
            return;
        };
        let Some((_, _, generation)) = db.bound_database() else {
            return;
        };
        if generation.saturating_sub(self.last_compact_gen.load(Ordering::Acquire)) < every {
            return;
        }
        db.set_wal_actor("maintenance");
        if let Ok(report) = db.compact() {
            self.compactions.fetch_add(1, Ordering::Relaxed);
            self.last_compact_gen
                .store(report.generation, Ordering::Release);
        }
    }
}

/// A concurrency-safe DSLog server: wait-free snapshot queries, two-phase
/// batched ingest, incremental auto-commits. See the module docs for the
/// epoch-publication story. Cheap to share by reference across threads
/// (`&DslogService: Send + Sync`); every method takes `&self`.
pub struct DslogService {
    shared: Arc<Shared>,
    ticker: Option<std::thread::JoinHandle<()>>,
}

impl std::fmt::Debug for DslogService {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DslogService")
            .field("policy", &self.shared.policy)
            .field("epoch", &self.shared.epoch.load(Ordering::Relaxed))
            .field(
                "pending_edges",
                &self.shared.pending_edges.load(Ordering::Relaxed),
            )
            .finish_non_exhaustive()
    }
}

impl DslogService {
    /// Wrap a database for concurrent serving. For the commit triggers of
    /// `policy` to work the database must be bound to a directory
    /// (saved/opened at least once); an unbound database still serves
    /// ingest + queries, but commits fail with [`DslogError::NotBound`]
    /// (auto-commit ticks drop the error and retry next time).
    pub fn new(db: Dslog, policy: AutoCommitPolicy) -> Self {
        let bound_generation = db.bound_database().map_or(0, |(_, _, g)| g);
        let shared = Arc::new(Shared {
            current: RwLock::new(&ranks::SERVICE_CURRENT, Arc::new(db)),
            epoch: AtomicU64::new(0),
            writer: Mutex::new(&ranks::SERVICE_WRITER, ()),
            commit_lock: Mutex::new(&ranks::SERVICE_COMMIT, ()),
            policy,
            pending_edges: AtomicU64::new(0),
            edges_ingested: AtomicU64::new(0),
            queries: AtomicU64::new(0),
            commits: AtomicU64::new(0),
            auto_commits: AtomicU64::new(0),
            compactions: AtomicU64::new(0),
            last_compact_gen: AtomicU64::new(bound_generation),
            failed_commits: AtomicU64::new(0),
            consecutive_failures: AtomicU32::new(0),
            last_commit_error: Mutex::new(&ranks::SERVICE_ERROR, None),
            stop: Mutex::new(&ranks::SERVICE_STOP, false),
            stop_cv: Condvar::new(),
        });
        let ticker = policy.interval.map(|interval| {
            let shared = Arc::clone(&shared);
            // Sanctioned detached thread (see lint-allow.txt): joined by
            // stop_ticker before the service is torn down.
            std::thread::spawn(move || {
                let mut wait = interval;
                loop {
                    let mut stop = shared.stop.lock();
                    if *stop {
                        break;
                    }
                    let (guard, _) = shared.stop_cv.wait_timeout(stop, wait);
                    stop = guard;
                    if *stop {
                        break;
                    }
                    drop(stop);
                    if shared.pending_edges.load(Ordering::Acquire) > 0 {
                        // Unbound databases (NotBound) and transient IO
                        // errors leave the edges pending for a later tick
                        // or an explicit commit; the failure is counted
                        // and its text surfaced through `stats`.
                        let _ = shared.commit(true);
                    }
                    // Capped exponential backoff: each consecutive commit
                    // failure doubles the next tick's wait, up to 16x the
                    // configured interval, so a persistently failing
                    // store is not hammered with retry IO. Any success
                    // (including a manual commit) snaps back to the base
                    // interval.
                    let consec = shared.consecutive_failures.load(Ordering::Relaxed);
                    wait = if consec == 0 {
                        interval
                    } else {
                        interval.saturating_mul(1u32 << consec.min(4))
                    };
                }
            })
        });
        Self { shared, ticker }
    }

    /// Open a database directory and serve it. `lazy` defers table loads
    /// to first use (ideal when a large database serves queries touching
    /// few edges). Thin wrapper over
    /// [`open_with`](Self::open_with) for the two historical knobs.
    pub fn open(
        dir: impl AsRef<std::path::Path>,
        lazy: bool,
        policy: AutoCommitPolicy,
    ) -> Result<Self> {
        Self::open_with(dir, Dslog::options().lazy(lazy), policy)
    }

    /// Open a database directory through a full [`crate::api::OpenOptions`]
    /// builder and serve it — the way to hand the service a retention
    /// window, a [`MaintenancePolicy`], or non-default query/compression
    /// options in one validated bundle.
    pub fn open_with(
        dir: impl AsRef<std::path::Path>,
        options: crate::api::OpenOptions,
        policy: AutoCommitPolicy,
    ) -> Result<Self> {
        Ok(Self::new(options.open(dir)?, policy))
    }

    /// Define (or idempotently re-define) a named array, published as a
    /// new epoch.
    pub fn define_array(&self, name: &str, shape: &[usize]) -> Result<()> {
        let _excl = self.shared.writer.lock();
        let mut next = self.shared.snapshot().clone_for_epoch();
        next.define_array(name, shape)?;
        self.shared.publish(next);
        Ok(())
    }

    /// Ingest a batch of edges.
    ///
    /// Phase 1 (a snapshot, no lock): validate every job's arrays and
    /// arities, and reject duplicate `(in, out)` pairs — against the
    /// stored edge set *and* within the batch itself
    /// ([`DslogError::DuplicateEdge`]).
    /// Phase 2 (no lock): ProvRC-compress the whole batch with
    /// work-stealing worker threads.
    /// Phase 3 (writer lock): re-run the duplicate check against the
    /// *current* epoch (a racing batch may have installed one of our
    /// pairs while we compressed), build the next epoch from pointer
    /// clones, install every compressed table O(1)/edge, and publish with
    /// one swap.
    ///
    /// Phase 3 cannot partially install: any error before the swap drops
    /// the unpublished epoch, so concurrent queries — and the service
    /// counters — see either none or all of the batch, exactly. If the
    /// auto-commit edge threshold fires, the triggered commit's report is
    /// returned in the [`BatchReport`].
    pub fn ingest_batch(&self, jobs: Vec<IngestJob>) -> Result<BatchReport> {
        if jobs.is_empty() {
            return Ok(BatchReport {
                edges: 0,
                rows: 0,
                pending_edges: self.shared.pending_edges.load(Ordering::Acquire),
                auto_commit: None,
            });
        }
        // Phase 1: resolve shapes + options against a snapshot. Shapes
        // are stable once defined (re-definition with a different shape
        // is rejected), so they cannot drift before phase 3. Duplicates
        // are rejected here for a fast, pre-compression error; phase 3
        // re-checks authoritatively.
        let (shapes, opts, policy) = {
            let db = self.shared.snapshot();
            let storage = db.storage();
            let mut batch_pairs: HashSet<(&str, &str)> = HashSet::with_capacity(jobs.len());
            let shapes = jobs
                .iter()
                .map(|job| {
                    let in_shape = storage.array(&job.in_array)?.shape.clone();
                    let out_shape = storage.array(&job.out_array)?.shape.clone();
                    if job.lineage.out_arity() != out_shape.len()
                        || job.lineage.in_arity() != in_shape.len()
                    {
                        return Err(DslogError::ArityMismatch {
                            expected: out_shape.len() + in_shape.len(),
                            got: job.lineage.arity(),
                        });
                    }
                    if storage.has_directed_edge(&job.in_array, &job.out_array)
                        || !batch_pairs.insert((&job.in_array, &job.out_array))
                    {
                        return Err(DslogError::DuplicateEdge {
                            in_array: job.in_array.clone(),
                            out_array: job.out_array.clone(),
                        });
                    }
                    Ok((out_shape, in_shape))
                })
                .collect::<Result<Vec<_>>>()?;
            (shapes, db.compress_options(), storage.materialize_policy())
        };

        // Phase 2: compress outside any lock.
        let compress_jobs: Vec<CompressJob<'_>> = jobs
            .iter()
            .zip(&shapes)
            .map(|(job, (out_shape, in_shape))| {
                (&job.lineage, out_shape.as_slice(), in_shape.as_slice())
            })
            .collect();
        let backward = matches!(policy, Materialize::Backward | Materialize::Both).then(|| {
            provrc::compress_batch_parallel_opts(&compress_jobs, Orientation::Backward, opts)
        });
        let forward = matches!(policy, Materialize::Forward | Materialize::Both).then(|| {
            provrc::compress_batch_parallel_opts(&compress_jobs, Orientation::Forward, opts)
        });

        // Phase 3: build + publish the next epoch under the writer lock
        // (results keep job order; each iterator yields one table per
        // job). The duplicate re-check runs against the freshest epoch
        // BEFORE any install, so a batch that lost an install race is
        // rejected whole. Counters are bumped while the lock is still
        // held, so a commit — which pairs its snapshot with the counter
        // under the same lock — can never see these edges without also
        // counting them.
        let rows: usize = jobs.iter().map(|j| j.lineage.n_rows()).sum();
        let n_edges = jobs.len();
        let pending = {
            let mut backward = backward.map(Vec::into_iter);
            let mut forward = forward.map(Vec::into_iter);
            let _excl = self.shared.writer.lock();
            let mut next = self.shared.snapshot().clone_for_epoch();
            let storage = next.storage_mut();
            for job in &jobs {
                if storage.has_directed_edge(&job.in_array, &job.out_array) {
                    return Err(DslogError::DuplicateEdge {
                        in_array: job.in_array.clone(),
                        out_array: job.out_array.clone(),
                    });
                }
            }
            for job in &jobs {
                // Cannot fail: arrays/arities validated in phase 1 (shapes
                // are immutable once defined), duplicates re-checked just
                // above, and the tables were compressed for exactly these
                // slots. Even if it somehow did, `next` is unpublished —
                // `?` here drops the whole epoch, installing nothing.
                storage.ingest_prepared(
                    &job.in_array,
                    &job.out_array,
                    backward.as_mut().and_then(Iterator::next),
                    forward.as_mut().and_then(Iterator::next),
                )?;
            }
            self.shared.publish(next);
            self.shared
                .edges_ingested
                .fetch_add(n_edges as u64, Ordering::Relaxed);
            self.shared
                .pending_edges
                .fetch_add(n_edges as u64, Ordering::AcqRel)
                + n_edges as u64
        };

        // Edge-threshold auto-commit. The batch itself already succeeded:
        // a commit failure (unbound database, transient IO error) is
        // reported in the `auto_commit` field, not as the batch's result —
        // the edges stay installed and pending for a later commit.
        let auto_commit = match self.shared.policy.edge_threshold {
            Some(threshold) if pending >= threshold => Some(self.shared.commit(true)),
            _ => None,
        };
        Ok(BatchReport {
            edges: n_edges,
            rows,
            pending_edges: self.shared.pending_edges.load(Ordering::Acquire),
            auto_commit,
        })
    }

    /// Run a `prov_query` against the current snapshot. Wait-free with
    /// respect to writers: the snapshot `Arc` is cloned and the query
    /// runs entirely against it, concurrent with other queries, batch
    /// compression, installs, and commit IO.
    pub fn query(&self, path: &[&str], query_cells: &[Vec<i64>]) -> Result<QueryResult> {
        self.shared.queries.fetch_add(1, Ordering::Relaxed);
        self.shared.snapshot().prov_query(path, query_cells)
    }

    /// Run many `prov_query` calls sharing one path as a single batched
    /// sweep against the current snapshot (see
    /// [`Dslog::prov_query_batch`]): frontiers are deduplicated, each hop
    /// resolves once, and the whole batch sees one consistent epoch. The
    /// service query counter advances by the batch size.
    pub fn query_batch(
        &self,
        path: &[&str],
        queries: &[Vec<Vec<i64>>],
    ) -> Result<Vec<QueryResult>> {
        self.shared
            .queries
            .fetch_add(queries.len() as u64, Ordering::Relaxed);
        self.shared.snapshot().prov_query_batch(path, queries)
    }

    /// Commit pending work to the bound directory now (incremental:
    /// O(changed edges)). Queries and ingest installs keep being served
    /// while the pinned snapshot is written.
    pub fn commit(&self) -> Result<CommitReport> {
        self.shared.commit(false)
    }

    /// Current counters and sizes, all describing one snapshot (whose
    /// identity is the `epoch` field).
    pub fn stats(&self) -> ServiceStats {
        let db = self.shared.snapshot();
        let generation = db.bound_database().map(|(_, _, generation)| generation);
        ServiceStats {
            arrays: db.storage().array_names().len(),
            edges: db.storage().n_edges(),
            pending_edges: self.shared.pending_edges.load(Ordering::Acquire),
            edges_ingested: self.shared.edges_ingested.load(Ordering::Relaxed),
            queries: self.shared.queries.load(Ordering::Relaxed),
            commits: self.shared.commits.load(Ordering::Relaxed),
            auto_commits: self.shared.auto_commits.load(Ordering::Relaxed),
            failed_commits: self.shared.failed_commits.load(Ordering::Relaxed),
            last_commit_error: self.shared.last_commit_error.lock().clone(),
            epoch: self.shared.epoch.load(Ordering::Acquire),
            generation,
            compactions: self.shared.compactions.load(Ordering::Relaxed),
            config: db.config(),
        }
    }

    /// Label subsequently logged operations with `actor` (recorded in
    /// every operation-log record, see [`crate::storage::wal`]). The
    /// label is shared across all epoch snapshots of the served
    /// database, so it applies to in-flight ingest as well. The ticker
    /// overrides it with `"auto-commit"` for its own commit records.
    pub fn set_actor(&self, actor: &str) {
        self.shared.snapshot().set_wal_actor(actor);
    }

    /// The bound directory's operation log, oldest record first (see
    /// [`Dslog::history`]). Fails with [`DslogError::NotBound`] on an
    /// unbound database.
    pub fn history(&self) -> Result<Vec<crate::storage::wal::OpRecord>> {
        self.shared.snapshot().history()
    }

    /// Run a closure against the current snapshot (inspection beyond what
    /// [`stats`](Self::stats) exposes). The whole closure sees ONE
    /// consistent epoch — a batch installed while it runs is either fully
    /// visible or fully absent.
    pub fn with_db<T>(&self, f: impl FnOnce(&Dslog) -> T) -> T {
        f(&self.shared.snapshot())
    }

    fn stop_ticker(&mut self) {
        if let Some(handle) = self.ticker.take() {
            *self.shared.stop.lock() = true;
            self.shared.stop_cv.notify_all();
            let _ = handle.join();
        }
    }

    /// Stop the timer thread, run a final commit if anything is pending
    /// (and the database is bound), and hand the database back.
    ///
    /// The database is returned **even when the final commit fails**
    /// (disk full, directory gone): the uncommitted edges are still in
    /// it, so the caller can retry `commit` or `save` elsewhere. The
    /// commit outcome rides alongside in the inner `Result`.
    ///
    /// Fails with [`DslogError::ServiceBusy`] if other live references to
    /// the service internals remain (a server thread still running, a
    /// leaked snapshot handle) — tearing down under a live reader would
    /// otherwise have to abort the process.
    pub fn shutdown(mut self) -> Result<(Dslog, Result<()>)> {
        self.stop_ticker();
        let final_commit = if self.shared.pending_edges.load(Ordering::Acquire) > 0
            && self.shared.snapshot().bound_database().is_some()
        {
            self.shared.commit(false).map(drop)
        } else {
            Ok(())
        };
        let shared = Arc::clone(&self.shared);
        drop(self); // Drop sees ticker == None: nothing left to stop.
        let shared = Arc::try_unwrap(shared)
            .map_err(|_| DslogError::ServiceBusy("service references remain after ticker join"))?;
        let db = Arc::try_unwrap(shared.current.into_inner())
            .map_err(|_| DslogError::ServiceBusy("snapshot readers remain at teardown"))?;
        Ok((db, final_commit))
    }
}

impl Drop for DslogService {
    fn drop(&mut self) {
        self.stop_ticker();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::TableCapture;

    fn temp_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("dslog-service-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn small_lineage(n: i64, shift: i64) -> LineageTable {
        let mut t = LineageTable::new(1, 1);
        for i in 0..n {
            t.push_row(&[i, (i + shift) % n]);
        }
        t
    }

    fn bound_service(dir: &std::path::Path, policy: AutoCommitPolicy) -> DslogService {
        let mut db = Dslog::new();
        db.define_array("A", &[8]).unwrap();
        db.define_array("B", &[8]).unwrap();
        db.add_lineage("A", "B", &TableCapture::new(small_lineage(8, 0)))
            .unwrap();
        db.save(dir, false).unwrap();
        DslogService::new(db, policy)
    }

    #[test]
    fn batch_ingest_then_query_roundtrip() {
        let dir = temp_dir("batch");
        let service = bound_service(&dir, AutoCommitPolicy::manual());
        service.define_array("C", &[8]).unwrap();
        service.define_array("D", &[8]).unwrap();
        let report = service
            .ingest_batch(vec![
                IngestJob::new("B", "C", small_lineage(8, 1)),
                IngestJob::new("C", "D", small_lineage(8, 2)),
            ])
            .unwrap();
        assert_eq!(report.edges, 2);
        assert_eq!(report.pending_edges, 2);
        assert!(report.auto_commit.is_none());
        // Multi-hop query across pre-existing and batch-ingested edges.
        let r = service.query(&["D", "C", "B", "A"], &[vec![3]]).unwrap();
        assert_eq!(r.hops, 3);
        assert!(!r.cells.is_empty());
        // Nothing committed yet: reopening shows only the seeded edge.
        assert_eq!(Dslog::open(&dir).unwrap().storage().n_edges(), 1);
        let report = service.commit().unwrap();
        assert!(report.incremental);
        assert_eq!(report.files_written, 2);
        assert_eq!(Dslog::open(&dir).unwrap().storage().n_edges(), 3);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn query_batch_matches_loop_and_counts_queries() {
        let dir = temp_dir("qbatch");
        let service = bound_service(&dir, AutoCommitPolicy::manual());
        let queries: Vec<Vec<Vec<i64>>> = (0..4).map(|i| vec![vec![i]]).collect();
        let batch = service.query_batch(&["B", "A"], &queries).unwrap();
        assert_eq!(batch.len(), 4);
        for (q, r) in queries.iter().zip(&batch) {
            let single = service.query(&["B", "A"], q).unwrap();
            assert_eq!(r.cells.cell_set(), single.cells.cell_set());
        }
        // 4 batched + 4 singles.
        assert_eq!(service.stats().queries, 8);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn batch_ingest_matches_sequential_ingest() {
        let dir = temp_dir("parity");
        let service = bound_service(&dir, AutoCommitPolicy::manual());
        service.define_array("C", &[8]).unwrap();
        service
            .ingest_batch(vec![IngestJob::new("B", "C", small_lineage(8, 3))])
            .unwrap();

        let mut reference = Dslog::new();
        reference.define_array("B", &[8]).unwrap();
        reference.define_array("C", &[8]).unwrap();
        reference
            .add_lineage("B", "C", &TableCapture::new(small_lineage(8, 3)))
            .unwrap();

        let via_service = service.with_db(|db| {
            (*db.storage()
                .stored_table("B", "C", Orientation::Backward)
                .unwrap())
            .clone()
        });
        let via_api = reference
            .storage()
            .stored_table("B", "C", Orientation::Backward)
            .unwrap();
        assert_eq!(via_service, *via_api);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn edge_threshold_auto_commits() {
        let dir = temp_dir("threshold");
        let service = bound_service(&dir, AutoCommitPolicy::every_edges(2));
        service.define_array("C", &[8]).unwrap();
        service.define_array("D", &[8]).unwrap();
        let r1 = service
            .ingest_batch(vec![IngestJob::new("B", "C", small_lineage(8, 1))])
            .unwrap();
        assert!(r1.auto_commit.is_none());
        assert_eq!(r1.pending_edges, 1);
        let r2 = service
            .ingest_batch(vec![IngestJob::new("C", "D", small_lineage(8, 2))])
            .unwrap();
        let commit = r2.auto_commit.expect("threshold reached").unwrap();
        assert!(commit.incremental);
        assert_eq!(r2.pending_edges, 0);
        assert_eq!(Dslog::open(&dir).unwrap().storage().n_edges(), 3);
        let stats = service.stats();
        assert_eq!(stats.auto_commits, 1);
        assert_eq!(stats.commits, 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn maintenance_policy_compacts_after_enough_generations() {
        let dir = temp_dir("maint");
        let mut db = Dslog::options()
            .maintenance(MaintenancePolicy::every_generations(2))
            .create(&dir)
            .unwrap();
        db.define_array("A", &[8]).unwrap();
        db.define_array("B", &[8]).unwrap();
        db.add_lineage("A", "B", &TableCapture::new(small_lineage(8, 0)))
            .unwrap();
        db.commit().unwrap();
        // The watermark seeds at the bound generation: the service never
        // compacts a freshly opened directory on its first commit.
        let service = DslogService::new(db, AutoCommitPolicy::manual());
        service.define_array("C", &[8]).unwrap();
        service
            .ingest_batch(vec![IngestJob::new("B", "C", small_lineage(8, 1))])
            .unwrap();
        service.commit().unwrap(); // 1 generation since seed: below threshold
        assert_eq!(service.stats().compactions, 0);
        service.define_array("D", &[8]).unwrap();
        service
            .ingest_batch(vec![IngestJob::new("C", "D", small_lineage(8, 2))])
            .unwrap();
        service.commit().unwrap(); // 2 generations: compaction fires
        let stats = service.stats();
        assert_eq!(stats.compactions, 1);
        assert_eq!(stats.config.maintenance.auto_compact_generations, Some(2));
        // Every edge file was folded into consolidated segments.
        let names: Vec<String> = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
            .collect();
        assert!(names.iter().any(|n| n.starts_with("segment-")), "{names:?}");
        assert!(!names.iter().any(|n| n.starts_with("edge-")), "{names:?}");
        // The service keeps serving multi-hop queries over the compacted
        // layout, and a cold reopen sees all edges.
        let r = service.query(&["D", "C", "B", "A"], &[vec![3]]).unwrap();
        assert_eq!(r.hops, 3);
        let (_db, commit) = service.shutdown().expect("no refs remain");
        commit.unwrap();
        assert_eq!(Dslog::open(&dir).unwrap().storage().n_edges(), 3);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn interval_policy_commits_in_background() {
        let dir = temp_dir("interval");
        let service = bound_service(&dir, AutoCommitPolicy::every(Duration::from_millis(25)));
        service.define_array("C", &[8]).unwrap();
        service
            .ingest_batch(vec![IngestJob::new("B", "C", small_lineage(8, 1))])
            .unwrap();
        // The ticker must pick the pending edge up without any explicit
        // commit call. The poll open races the ticker's live commit (a
        // second manager on a live directory — unsupported outside tests),
        // so a transient Err just means "poll again".
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        while !Dslog::open(&dir).is_ok_and(|db| db.storage().n_edges() == 2) {
            assert!(
                std::time::Instant::now() < deadline,
                "ticker never committed"
            );
            std::thread::sleep(Duration::from_millis(10));
        }
        assert!(service.stats().auto_commits >= 1);
        drop(service); // joins the ticker without hanging
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn shutdown_commits_pending_and_returns_db() {
        let dir = temp_dir("shutdown");
        let service = bound_service(&dir, AutoCommitPolicy::manual());
        service.define_array("C", &[8]).unwrap();
        service
            .ingest_batch(vec![IngestJob::new("B", "C", small_lineage(8, 5))])
            .unwrap();
        let (db, commit) = service.shutdown().expect("shutdown");
        commit.unwrap();
        assert_eq!(db.storage().n_edges(), 2);
        // The final commit made it to disk.
        assert_eq!(Dslog::open(&dir).unwrap().storage().n_edges(), 2);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn shutdown_with_live_service_reference_is_service_busy() {
        // Regression for the former `expect("ticker joined; ...")` abort:
        // a leaked reference to the service internals must surface as
        // DslogError::ServiceBusy, not a panic.
        let mut db = Dslog::new();
        db.define_array("A", &[4]).unwrap();
        let service = DslogService::new(db, AutoCommitPolicy::manual());
        let leaked = Arc::clone(&service.shared);
        let err = service.shutdown().unwrap_err();
        assert!(matches!(err, DslogError::ServiceBusy(_)), "{err}");
        drop(leaked);
    }

    #[test]
    fn shutdown_with_live_snapshot_reader_is_service_busy() {
        // Regression for the former "no snapshot readers remain" panic.
        let mut db = Dslog::new();
        db.define_array("A", &[4]).unwrap();
        let service = DslogService::new(db, AutoCommitPolicy::manual());
        let snapshot = service.shared.snapshot();
        let err = service.shutdown().unwrap_err();
        assert!(matches!(err, DslogError::ServiceBusy(_)), "{err}");
        assert_eq!(snapshot.storage().array_names().len(), 1);
    }

    #[test]
    fn unbound_service_serves_but_cannot_commit() {
        let mut db = Dslog::new();
        db.define_array("A", &[4]).unwrap();
        db.define_array("B", &[4]).unwrap();
        // Threshold policy on an unbound database: the batch must still
        // succeed, with the commit failure reported alongside it.
        let service = DslogService::new(db, AutoCommitPolicy::every_edges(1));
        let report = service
            .ingest_batch(vec![IngestJob::new("A", "B", small_lineage(4, 1))])
            .unwrap();
        assert!(matches!(
            report.auto_commit,
            Some(Err(DslogError::NotBound))
        ));
        assert_eq!(report.pending_edges, 1);
        assert!(service.query(&["B", "A"], &[vec![0]]).is_ok());
        assert!(matches!(service.commit(), Err(DslogError::NotBound)));
        // Both failures (the auto-commit and the manual one) are counted
        // and the latest error text is surfaced.
        let stats = service.stats();
        assert_eq!(stats.failed_commits, 2);
        let err = stats.last_commit_error.expect("error surfaced");
        assert!(err.contains("not bound"), "{err}");
        // Shutdown skips the final commit and still returns the database
        // — the ingested edge survives in memory for the caller to save.
        let (db, commit) = service.shutdown().expect("shutdown");
        commit.unwrap();
        assert_eq!(db.storage().n_edges(), 1);
        let dir = temp_dir("unbound-rescue");
        db.save(&dir, false).unwrap();
        assert_eq!(Dslog::open(&dir).unwrap().storage().n_edges(), 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn batch_errors_are_atomic() {
        let dir = temp_dir("badbatch");
        let service = bound_service(&dir, AutoCommitPolicy::manual());
        // Unknown array: rejected in phase 1, nothing installed.
        let err = service
            .ingest_batch(vec![IngestJob::new("B", "NOPE", small_lineage(8, 1))])
            .unwrap_err();
        assert!(matches!(err, DslogError::UnknownArray(_)));
        assert_eq!(service.stats().edges, 1);
        assert_eq!(service.stats().pending_edges, 0);
        // Arity mismatch: also phase-1 rejected.
        service.define_array("C", &[4, 2]).unwrap();
        let err = service
            .ingest_batch(vec![IngestJob::new("B", "C", small_lineage(8, 1))])
            .unwrap_err();
        assert!(matches!(err, DslogError::ArityMismatch { .. }));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    /// Regression (pre-PR: `ingest_prepared` silently overwrote duplicate
    /// edges via `edges.insert`, bumping every counter while `n_edges`
    /// stayed flat): a duplicate of an already-stored edge rejects the
    /// whole batch and leaves every counter exact.
    #[test]
    fn duplicate_of_stored_edge_rejected_with_exact_counters() {
        let dir = temp_dir("dup-stored");
        let service = bound_service(&dir, AutoCommitPolicy::manual());
        let seed_edges = service.stats().edges as u64; // the committed A->B
        service.define_array("C", &[8]).unwrap();
        service
            .ingest_batch(vec![IngestJob::new("B", "C", small_lineage(8, 1))])
            .unwrap();

        // Re-ingesting A->B (stored) or B->C (pending) must fail whole.
        for dup in ["A", "B"] {
            let out = if dup == "A" { "B" } else { "C" };
            let err = service
                .ingest_batch(vec![IngestJob::new(dup, out, small_lineage(8, 7))])
                .unwrap_err();
            assert!(
                matches!(err, DslogError::DuplicateEdge { .. }),
                "got {err:?}"
            );
        }

        // Counter invariant: every ingested edge is a NEW edge.
        let stats = service.stats();
        assert_eq!(stats.edges_ingested, stats.edges as u64 - seed_edges);
        assert_eq!(stats.pending_edges, 1);
        // The stored B->C table is still the original (not overwritten).
        let r = service.query(&["C", "B"], &[vec![0]]).unwrap();
        assert!(r.cells.contains_cell(&[1]), "shift-1 relation replaced");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    /// Regression (pre-PR: phase 3 `?`-returned mid-loop, leaving earlier
    /// jobs of the batch installed and the skipped counter bumps out of
    /// sync): a batch that fails on its *second* job must install
    /// NOTHING — queries, `n_edges`, and all counters behave as if the
    /// call never happened.
    #[test]
    fn failing_batch_installs_nothing() {
        let dir = temp_dir("atomic-batch");
        let service = bound_service(&dir, AutoCommitPolicy::manual());
        service.define_array("C", &[8]).unwrap();
        service.define_array("D", &[8]).unwrap();
        let before = service.stats();

        // Job 1 is perfectly valid; job 2 duplicates the stored A->B.
        let err = service
            .ingest_batch(vec![
                IngestJob::new("C", "D", small_lineage(8, 2)),
                IngestJob::new("A", "B", small_lineage(8, 3)),
            ])
            .unwrap_err();
        assert!(matches!(err, DslogError::DuplicateEdge { .. }));

        // And a batch duplicating a pair *within itself*.
        let err = service
            .ingest_batch(vec![
                IngestJob::new("C", "D", small_lineage(8, 2)),
                IngestJob::new("C", "D", small_lineage(8, 4)),
            ])
            .unwrap_err();
        assert!(matches!(err, DslogError::DuplicateEdge { .. }));

        let after = service.stats();
        assert_eq!(after.edges, before.edges, "partial install leaked");
        assert_eq!(after.pending_edges, before.pending_edges);
        assert_eq!(after.edges_ingested, before.edges_ingested);
        // The valid first job must NOT have been installed.
        assert!(matches!(
            service.query(&["D", "C"], &[vec![0]]),
            Err(DslogError::NoLineagePath { .. })
        ));
        // A later clean batch with the same pair succeeds (no residue).
        service
            .ingest_batch(vec![IngestJob::new("C", "D", small_lineage(8, 2))])
            .unwrap();
        assert_eq!(service.stats().edges, before.edges + 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    /// Commit failures are counted and surfaced through stats, and the
    /// next successful commit clears the error state (the ticker used to
    /// drop these errors on the floor).
    #[test]
    fn commit_failure_surfaces_then_clears_on_success() {
        use crate::storage::wal::{IoFault, IoPolicy};
        let dir = temp_dir("failstats");
        let service = bound_service(&dir, AutoCommitPolicy::manual());
        service.define_array("C", &[8]).unwrap();
        service
            .ingest_batch(vec![IngestJob::new("B", "C", small_lineage(8, 1))])
            .unwrap();
        // One-shot injected write failure: the first commit fails, the
        // edges stay pending, and the failure is surfaced.
        service.with_db(|db| db.set_io_policy(Some(IoPolicy::fail_at(IoFault::WriteError, 1))));
        assert!(service.commit().is_err());
        let stats = service.stats();
        assert_eq!(stats.failed_commits, 1);
        assert_eq!(stats.pending_edges, 1);
        assert!(stats.last_commit_error.is_some());
        // The policy trips exactly once: the retry succeeds and clears
        // the error state (failed_commits stays monotonic).
        service.commit().unwrap();
        let stats = service.stats();
        assert_eq!(stats.failed_commits, 1);
        assert_eq!(stats.pending_edges, 0);
        assert!(stats.last_commit_error.is_none());
        service.with_db(|db| db.set_io_policy(None));
        assert_eq!(Dslog::open(&dir).unwrap().storage().n_edges(), 2);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    /// The interval ticker keeps counting failures (with backoff) instead
    /// of silently dropping them.
    #[test]
    fn ticker_surfaces_commit_failures() {
        let mut db = Dslog::new();
        db.define_array("A", &[4]).unwrap();
        db.define_array("B", &[4]).unwrap();
        let service = DslogService::new(db, AutoCommitPolicy::every(Duration::from_millis(5)));
        service
            .ingest_batch(vec![IngestJob::new("A", "B", small_lineage(4, 1))])
            .unwrap();
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        while service.stats().failed_commits == 0 {
            assert!(
                std::time::Instant::now() < deadline,
                "ticker never reported a failure"
            );
            std::thread::sleep(Duration::from_millis(5));
        }
        let err = service.stats().last_commit_error.expect("error surfaced");
        assert!(err.contains("not bound"), "{err}");
        assert_eq!(service.stats().pending_edges, 1);
    }

    /// Every published write advances the epoch; reads pin one snapshot.
    #[test]
    fn epochs_advance_and_snapshots_pin() {
        let dir = temp_dir("epochs");
        let service = bound_service(&dir, AutoCommitPolicy::manual());
        let e0 = service.stats().epoch;
        service.define_array("C", &[8]).unwrap();
        let e1 = service.stats().epoch;
        assert!(e1 > e0);
        // A snapshot taken now must not see a later batch.
        let pinned = service.with_db(|db| db.storage().n_edges());
        service
            .ingest_batch(vec![IngestJob::new("B", "C", small_lineage(8, 1))])
            .unwrap();
        assert!(service.stats().epoch > e1);
        assert_eq!(service.with_db(|db| db.storage().n_edges()), pinned + 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
