//! Relational representations of lineage.
//!
//! * [`lineage`] — the uncompressed relation `R(b1..bl, a1..am)` of §III.B.
//! * [`boxes`] — tables of interval boxes (queries `Q'` and θ-join results).
//! * [`compressed`] — the ProvRC-compressed relation of §IV.
//! * [`index`] — sorted interval indexes over a compressed table's primary
//!   columns (binary-search probes for the in-situ query engine).

pub mod boxes;
pub mod compressed;
pub mod index;
pub mod lineage;

pub use boxes::BoxTable;
pub use compressed::{Cell, CompressedTable, Orientation};
pub use index::TableIndex;
pub use lineage::LineageTable;
