//! The θ-join of §V.B: a range join on the absolute attributes followed by
//! de-relativization of the relative attributes.
//!
//! **Step 1 — range join**: each query box is intersected with each
//! compressed row's primary intervals; rows with any empty intersection are
//! dropped. Because each compressed row is all-to-all between its primary
//! and secondary sides (in relative space for `Rel` cells), the intersection
//! preserves exactly the lineage of the queried cells (Fig. 4).
//!
//! **Step 2 — de-relativize**: relative cells are turned back into absolute
//! intervals with `rel_back(x, δ) = [x.lo + δ.lo, x.hi + δ.hi]` over the
//! *intersected* anchor interval (Fig. 5). When two or more relative cells
//! share one anchor (e.g. the lineage of `B[i] = A[i,i]`), de-relativizing
//! each independently and taking the product would over-approximate the true
//! cell set; we split the shared anchor interval into unit points in exactly
//! that case, which keeps the result exact (DESIGN.md §3.3).

use crate::interval::Interval;
use crate::table::{BoxTable, Cell, CompressedTable};

/// Join a query box table (over the table's primary attributes) against a
/// compressed lineage table, returning covered cells of the secondary side.
pub fn theta_join(query: &BoxTable, table: &CompressedTable) -> BoxTable {
    assert_eq!(
        query.arity(),
        table.primary_arity(),
        "query arity must match the table's absolute side"
    );
    assert!(
        !table.is_generalized(),
        "generalized tables must be instantiated before querying"
    );
    let pa = table.primary_arity();
    let sa = table.secondary_arity();
    let mut out = BoxTable::new(sa);
    let mut isect = vec![Interval::point(0); pa];

    for q in query.boxes() {
        'rows: for row in table.rows() {
            let (prim, sec) = row.split_at(pa);
            for k in 0..pa {
                let Cell::Abs(p) = prim[k] else {
                    unreachable!("instantiated tables have absolute primary cells")
                };
                match p.intersect(&q[k]) {
                    Some(i) => isect[k] = i,
                    None => continue 'rows,
                }
            }
            emit_derelativized(&isect, sec, &mut out);
        }
    }
    out
}

/// De-relativize one joined row and append the resulting box(es) to `out`.
fn emit_derelativized(isect: &[Interval], sec: &[Cell], out: &mut BoxTable) {
    // Count relative dependents per anchor.
    let mut dependents = vec![0u32; isect.len()];
    for cell in sec {
        if let Cell::Rel { anchor, .. } = cell {
            dependents[*anchor as usize] += 1;
        }
    }
    // Anchors that need unit-splitting: ≥ 2 dependents over a non-point
    // intersected interval.
    let split: Vec<usize> = (0..isect.len())
        .filter(|&j| dependents[j] >= 2 && !isect[j].is_point())
        .collect();

    if split.is_empty() {
        let bx: Vec<Interval> = sec
            .iter()
            .map(|cell| match *cell {
                Cell::Abs(ivl) => ivl,
                Cell::Rel { anchor, delta } => isect[anchor as usize].minkowski_sum(&delta),
                Cell::Sym { .. } => unreachable!("checked by theta_join"),
            })
            .collect();
        out.push_box(&bx);
        return;
    }

    // Enumerate unit assignments for the split anchors.
    let mut values: Vec<i64> = split.iter().map(|&j| isect[j].lo).collect();
    loop {
        let bx: Vec<Interval> = sec
            .iter()
            .map(|cell| match *cell {
                Cell::Abs(ivl) => ivl,
                Cell::Rel { anchor, delta } => {
                    let j = anchor as usize;
                    match split.iter().position(|&s| s == j) {
                        Some(si) => Interval::point(values[si]).minkowski_sum(&delta),
                        None => isect[j].minkowski_sum(&delta),
                    }
                }
                Cell::Sym { .. } => unreachable!("checked by theta_join"),
            })
            .collect();
        out.push_box(&bx);

        // Advance the odometer over the split anchors.
        let mut advanced = false;
        for k in (0..split.len()).rev() {
            if values[k] < isect[split[k]].hi {
                values[k] += 1;
                for i in k + 1..split.len() {
                    values[i] = isect[split[i]].lo;
                }
                advanced = true;
                break;
            }
            values[k] = isect[split[k]].lo;
        }
        if !advanced {
            return;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::provrc::compress;
    use crate::query::reference;
    use crate::table::{LineageTable, Orientation};

    fn ivl(lo: i64, hi: i64) -> Interval {
        Interval::new(lo, hi)
    }

    /// Paper running example: Table II stored, query Table IV (b1 ∈ [1,2]),
    /// expected result Table VI: a1 = [1,2], a2 = [1,2].
    #[test]
    fn paper_tables_iv_to_vi() {
        let mut t = LineageTable::new(1, 2);
        for b in 1..=3 {
            for a2 in 1..=2 {
                t.push_row(&[b, b, a2]);
            }
        }
        let compressed = compress(&t, &[4], &[4, 3], Orientation::Backward);
        assert_eq!(compressed.n_rows(), 1);

        let q = BoxTable::from_boxes(1, &[&[ivl(1, 2)]]);
        let mut result = theta_join(&q, &compressed);
        result.merge();
        assert_eq!(result.n_boxes(), 1);
        assert_eq!(result.row(0), &[ivl(1, 2), ivl(1, 2)]);
    }

    /// Fig. 5: one-to-one lineage [0,1]→[1,3]-style relative interval; the
    /// de-relativized result must track the intersected anchor.
    #[test]
    fn relative_derelativization_tracks_intersection() {
        let n = 10;
        let mut t = LineageTable::new(1, 1);
        for i in 0..n {
            t.push_row(&[i, i]);
        }
        let compressed = compress(&t, &[n as usize], &[n as usize], Orientation::Backward);
        let q = BoxTable::from_boxes(1, &[&[ivl(3, 5)]]);
        let result = theta_join(&q, &compressed);
        assert_eq!(result.n_boxes(), 1);
        assert_eq!(result.row(0), &[ivl(3, 5)]);
    }

    #[test]
    fn disjoint_query_returns_empty() {
        let mut t = LineageTable::new(1, 1);
        for i in 0..4 {
            t.push_row(&[i, i]);
        }
        let compressed = compress(&t, &[4], &[4], Orientation::Backward);
        let q = BoxTable::from_boxes(1, &[&[ivl(7, 9)]]);
        assert!(theta_join(&q, &compressed).is_empty());
    }

    /// The shared-anchor case: B[i] = A[i,i]. Product de-relativization
    /// would return a square; the correct answer is the diagonal.
    #[test]
    fn shared_anchor_splits_exactly() {
        let n = 8i64;
        let mut t = LineageTable::new(1, 2);
        for i in 0..n {
            t.push_row(&[i, i, i]);
        }
        let compressed = compress(
            &t,
            &[n as usize],
            &[n as usize, n as usize],
            Orientation::Backward,
        );
        assert_eq!(compressed.n_rows(), 1, "diag compresses to one row");

        let q = BoxTable::from_boxes(1, &[&[ivl(2, 4)]]);
        let result = theta_join(&q, &compressed);
        let cells = result.cell_set();
        let expected: std::collections::BTreeSet<Vec<i64>> = (2..=4).map(|i| vec![i, i]).collect();
        assert_eq!(cells, expected, "must be the diagonal, not the square");
    }

    #[test]
    fn matches_reference_on_aggregate() {
        let mut t = LineageTable::new(1, 2);
        for b in 0..5 {
            for j in 0..3 {
                t.push_row(&[b, b, j]);
            }
        }
        let compressed = compress(&t, &[5], &[5, 3], Orientation::Backward);
        let q_cells = vec![vec![1i64], vec![3]];
        let q = BoxTable::from_cells(1, &q_cells);
        let result = theta_join(&q, &compressed);
        let expected = reference::step(
            &q_cells.iter().cloned().collect(),
            &t,
            reference::Direction::Backward,
        );
        assert_eq!(result.cell_set(), expected);
    }

    #[test]
    fn multiple_query_boxes_union() {
        let mut t = LineageTable::new(1, 1);
        for i in 0..10 {
            t.push_row(&[i, 9 - i]);
        }
        let compressed = compress(&t, &[10], &[10], Orientation::Backward);
        let q = BoxTable::from_boxes(1, &[&[ivl(0, 0)], &[ivl(9, 9)]]);
        let result = theta_join(&q, &compressed);
        let cells = result.cell_set();
        assert!(cells.contains(&vec![9]));
        assert!(cells.contains(&vec![0]));
        assert_eq!(cells.len(), 2);
    }
}
