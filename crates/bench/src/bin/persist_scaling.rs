//! Persistence scaling bench: save / eager-open / lazy-open timings plus
//! the incremental-commit series (append one edge + commit vs full save)
//! on a database of incompressible (scatter) edges, plain vs gzip disk
//! format. The database is a 32-edge chain totalling `rows` lineage rows
//! — the paper's workload shape (many registered operations), and the
//! regime where full-save cost is O(edges), not one big file.
//!
//! Tracks the cost model of the durable layer: a full `save` pays
//! serialization + checksums + atomic renames for every table, eager
//! `open` pays read + crc verify + decode for every table, lazy `open`
//! pays O(catalog) up front and defers each table's read/verify/decode to
//! its first query hop (also timed). An **incremental commit** after
//! appending one tiny edge must pay only O(new edge) + O(catalog) — the
//! `commit_speedup` column tracks how much cheaper that is than a full
//! save of the same database. Scale-independent invariants are asserted
//! on every run: each commit reuses all clean files, `verify` passes on
//! the mixed-generation snapshot, and a reopen sees every appended edge.
//!
//! Emits an aligned table on stdout and machine-readable
//! `BENCH_persist.json` in the working directory.
//!
//! Run: `cargo run -p dslog-bench --release --bin persist_scaling [--scale f]`

use dslog::api::{Dslog, TableCapture};
use dslog::table::LineageTable;
use dslog_bench::{cli_scale_seed, p50, secs, timed, TextTable};
use dslog_workloads::edges;
use std::fmt::Write as _;

struct Point {
    rows: usize,
    gzip: bool,
    db_bytes: u64,
    save_s: f64,
    open_eager_s: f64,
    open_lazy_s: f64,
    lazy_first_query_s: f64,
    append_p50_s: f64,
    commit_p50_s: f64,
    full_save_p50_s: f64,
}

impl Point {
    fn commit_speedup(&self) -> f64 {
        self.full_save_p50_s / self.commit_p50_s.max(1e-12)
    }
}

fn dir_bytes(dir: &std::path::Path) -> u64 {
    std::fs::read_dir(dir)
        .unwrap()
        .flatten()
        .filter_map(|e| e.metadata().ok())
        .map(|m| m.len())
        .sum()
}

/// A tiny (8-row) edge between two fresh arrays, the unit of "append".
fn small_edge(tag: usize) -> (String, String, LineageTable) {
    let mut t = LineageTable::new(1, 1);
    for i in 0..8 {
        t.push_row(&[i, (i + 1 + tag as i64) % 8]);
    }
    (format!("X{tag}"), format!("Y{tag}"), t)
}

/// Edges in the measured database chain.
const CHAIN_EDGES: usize = 32;

fn measure(rows: usize, gzip: bool, reps: usize) -> Point {
    let dir = std::env::temp_dir().join(format!(
        "dslog-persist-bench-{rows}-{gzip}-{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);

    // A 32-edge chain N0 -> N1 -> … -> N32 of incompressible scatter
    // edges (`edges::scatter`): ProvRC finds no ranges to merge, so the
    // table files grow with the row count — the regime where persistence
    // costs dominate. `rows` is the database total.
    let per_edge = (rows / CHAIN_EDGES).max(64);
    let names: Vec<String> = (0..=CHAIN_EDGES).map(|i| format!("N{i}")).collect();
    let mut db = Dslog::new();
    for name in &names {
        db.define_array(name, &[per_edge]).unwrap();
    }
    for hop in 0..CHAIN_EDGES {
        let (lineage, _, _) = edges::scatter(per_edge);
        db.add_lineage(&names[hop], &names[hop + 1], &TableCapture::new(lineage))
            .unwrap();
    }

    let (_, save_s) = timed(|| db.save(&dir, gzip).unwrap());
    let db_bytes = dir_bytes(&dir);
    let (_, open_eager_s) = timed(|| Dslog::open(&dir).unwrap());
    let (lazy, open_lazy_s) = timed(|| Dslog::open_lazy(&dir).unwrap());
    // First hop through a lazily opened database: read + verify + decode +
    // index build for that one edge (of 32 — the rest stay on disk).
    let cell = vec![(per_edge / 2) as i64];
    let (_, lazy_first_query_s) = timed(|| lazy.prov_query(&["N1", "N0"], &[cell]).unwrap());

    // Incremental series: append one tiny edge, commit, repeat. Each
    // commit may rewrite only the new edge; every earlier file must be
    // reused (asserted — this is the O(changed edges) contract).
    let mut append_samples = Vec::with_capacity(reps);
    let mut commit_samples = Vec::with_capacity(reps);
    for rep in 0..reps {
        let (x, y, t) = small_edge(rep);
        let (_, append_s) = timed(|| {
            db.define_array(&x, &[8]).unwrap();
            db.define_array(&y, &[8]).unwrap();
            db.add_lineage(&x, &y, &TableCapture::new(t)).unwrap();
        });
        let (report, commit_s) = timed(|| db.commit().unwrap());
        assert!(report.incremental, "commit into bound dir not incremental");
        assert_eq!(
            (report.files_written, report.files_reused),
            (1, CHAIN_EDGES + rep),
            "incremental commit rewrote clean files"
        );
        append_samples.push(append_s);
        commit_samples.push(commit_s);
    }
    // Invariants (scale-independent): the mixed-generation snapshot
    // verifies clean and a reopen sees every appended edge.
    let report = dslog::storage::persist::verify(&dir).unwrap();
    assert_eq!(report.n_edges, CHAIN_EDGES + reps, "edge count mismatch");
    assert!(report.stale_files.is_empty(), "{:?}", report.stale_files);
    assert_eq!(
        Dslog::open(&dir).unwrap().storage().n_edges(),
        CHAIN_EDGES + reps
    );

    // Full-save baseline on the SAME database state: save into a fresh
    // (unbound) directory, which rewrites every table.
    let mut full_samples = Vec::with_capacity(reps);
    for rep in 0..reps {
        let full_dir = dir.with_extension(format!("full{rep}"));
        let _ = std::fs::remove_dir_all(&full_dir);
        let (_, full_s) = timed(|| db.save(&full_dir, gzip).unwrap());
        full_samples.push(full_s);
        let _ = std::fs::remove_dir_all(&full_dir);
    }
    // The full saves re-bound the database elsewhere; no commits follow.

    let _ = std::fs::remove_dir_all(&dir);
    Point {
        // Actual total (per-edge row counts are floored at small scales).
        rows: per_edge * CHAIN_EDGES,
        gzip,
        db_bytes,
        save_s,
        open_eager_s,
        open_lazy_s,
        lazy_first_query_s,
        append_p50_s: p50(&mut append_samples),
        commit_p50_s: p50(&mut commit_samples),
        full_save_p50_s: p50(&mut full_samples),
    }
}

/// The generations axis: what `G` accreted commit generations cost at
/// open time, and what compaction buys back.
struct GenPoint {
    generations: usize,
    rows: usize,
    /// Open + first 1-hop query, p50 — same logical database three ways:
    /// freshly saved in one generation, accreted over `G` generations,
    /// and accreted-then-compacted.
    onegen_open_query_s: f64,
    multi_open_query_s: f64,
    compacted_open_query_s: f64,
    /// Segment files the compaction pass consolidated the chain into.
    segments: usize,
    /// Eager open of the accreted database, sharded vs forced serial
    /// (`DSLOG_OPEN_THREADS=1`), p50.
    open_parallel_s: f64,
    open_serial_s: f64,
}

/// Open eagerly and run one backward hop through the chain tip — the
/// "time to first answer" a cold reader pays.
fn open_and_first_query(dir: &std::path::Path, tip: usize, per_edge: usize) -> f64 {
    let names = [format!("N{tip}"), format!("N{}", tip - 1)];
    let path: Vec<&str> = names.iter().map(String::as_str).collect();
    let cell = vec![(per_edge / 2) as i64];
    let (_, s) = timed(|| {
        let db = Dslog::open(dir).unwrap();
        db.prov_query(&path, &[cell.clone()]).unwrap();
    });
    s
}

fn measure_generations(scale: f64, reps: usize) -> GenPoint {
    // Enough generations that accretion visibly dominates at full scale,
    // few enough to stay cheap in the drift gate.
    let generations = if scale < 0.05 { 8 } else { 64 };
    // Enough rows per edge that decode + crc (the work the sharded open
    // fans out) dominates the serial O(catalog + log) bookkeeping.
    let per_edge = ((1_000_000.0 * scale) as usize / generations).max(64);
    let dir = std::env::temp_dir().join(format!(
        "dslog-persist-gens-{generations}-{}",
        std::process::id()
    ));
    let onegen_dir = dir.with_extension("onegen");
    for d in [&dir, &onegen_dir] {
        let _ = std::fs::remove_dir_all(d);
    }

    // Accrete: one new chain edge per commit, `generations` commits, so
    // the catalog references one generation-named file per edge.
    let mut db = Dslog::new();
    db.define_array("N0", &[per_edge]).unwrap();
    for hop in 0..generations {
        db.define_array(&format!("N{}", hop + 1), &[per_edge])
            .unwrap();
        let (lineage, _, _) = edges::scatter(per_edge);
        db.add_lineage(
            &format!("N{hop}"),
            &format!("N{}", hop + 1),
            &TableCapture::new(lineage),
        )
        .unwrap();
        if hop == 0 {
            db.save(&dir, false).unwrap();
        } else {
            db.commit().unwrap();
        }
    }
    // The same logical database written fresh: one generation.
    db.save(&onegen_dir, false).unwrap();

    let mut onegen = Vec::with_capacity(reps);
    let mut multi = Vec::with_capacity(reps);
    let mut parallel = Vec::with_capacity(reps);
    let mut serial = Vec::with_capacity(reps);
    for _ in 0..reps {
        onegen.push(open_and_first_query(&onegen_dir, generations, per_edge));
        multi.push(open_and_first_query(&dir, generations, per_edge));
        let (_, par_s) = timed(|| Dslog::open(&dir).unwrap());
        parallel.push(par_s);
        std::env::set_var("DSLOG_OPEN_THREADS", "1");
        let (_, ser_s) = timed(|| Dslog::open(&dir).unwrap());
        std::env::remove_var("DSLOG_OPEN_THREADS");
        serial.push(ser_s);
    }

    // Fold the accreted chain; reads after this hit segment ranges.
    let report = Dslog::open(&dir).unwrap().compact().unwrap();
    assert_eq!(report.ranges, generations, "compaction lost a live slot");
    let mut compacted = Vec::with_capacity(reps);
    for _ in 0..reps {
        compacted.push(open_and_first_query(&dir, generations, per_edge));
    }
    let verify = dslog::storage::persist::verify(&dir).unwrap();
    assert_eq!(verify.manifests_verified, 1);
    assert!(verify.stale_files.is_empty(), "{:?}", verify.stale_files);

    for d in [&dir, &onegen_dir] {
        let _ = std::fs::remove_dir_all(d);
    }
    GenPoint {
        generations,
        rows: per_edge * generations,
        onegen_open_query_s: p50(&mut onegen),
        multi_open_query_s: p50(&mut multi),
        compacted_open_query_s: p50(&mut compacted),
        segments: report.segments_written,
        open_parallel_s: p50(&mut parallel),
        open_serial_s: p50(&mut serial),
    }
}

fn main() {
    let (scale, _seed) = cli_scale_seed();
    println!("persist_scaling — save/open/commit costs on a scatter edge (scale {scale})");

    let sizes = [10_000usize, 100_000];
    let reps = 7;
    let mut table = TextTable::new(&[
        "rows",
        "format",
        "db bytes",
        "save",
        "open eager",
        "open lazy",
        "lazy 1st query",
        "append p50",
        "commit p50",
        "full save p50",
        "commit speedup",
    ]);
    let mut json_rows = String::new();
    for &base in &sizes {
        let rows = ((base as f64 * scale) as usize).max(100);
        for gzip in [false, true] {
            let pt = measure(rows, gzip, reps);
            table.row(&[
                pt.rows.to_string(),
                if pt.gzip { "gzip" } else { "plain" }.to_string(),
                pt.db_bytes.to_string(),
                secs(pt.save_s),
                secs(pt.open_eager_s),
                secs(pt.open_lazy_s),
                secs(pt.lazy_first_query_s),
                secs(pt.append_p50_s),
                secs(pt.commit_p50_s),
                secs(pt.full_save_p50_s),
                format!("{:.1}x", pt.commit_speedup()),
            ]);
            if !json_rows.is_empty() {
                json_rows.push(',');
            }
            write!(
                json_rows,
                "{{\"rows\":{},\"gzip\":{},\"db_bytes\":{},\"save_s\":{:.9},\
                 \"open_eager_s\":{:.9},\"open_lazy_s\":{:.9},\"lazy_first_query_s\":{:.9},\
                 \"append_p50_s\":{:.9},\"commit_p50_s\":{:.9},\"full_save_p50_s\":{:.9},\
                 \"commit_speedup\":{:.2}}}",
                pt.rows,
                pt.gzip,
                pt.db_bytes,
                pt.save_s,
                pt.open_eager_s,
                pt.open_lazy_s,
                pt.lazy_first_query_s,
                pt.append_p50_s,
                pt.commit_p50_s,
                pt.full_save_p50_s,
                pt.commit_speedup()
            )
            .unwrap();
        }
    }
    println!("{}", table.render());

    // Generations axis: accretion cost at open time and what compaction
    // buys back, plus sharded-vs-serial open on the accreted chain.
    let gp = measure_generations(scale, 5);
    let mut gen_table = TextTable::new(&[
        "generations",
        "rows",
        "open+query 1-gen",
        "open+query uncompacted",
        "open+query compacted",
        "segments",
        "open parallel",
        "open serial",
    ]);
    gen_table.row(&[
        gp.generations.to_string(),
        gp.rows.to_string(),
        secs(gp.onegen_open_query_s),
        secs(gp.multi_open_query_s),
        secs(gp.compacted_open_query_s),
        gp.segments.to_string(),
        secs(gp.open_parallel_s),
        secs(gp.open_serial_s),
    ]);
    println!("{}", gen_table.render());
    if scale >= 1.0 {
        // The compaction contract, asserted where timings are stable: a
        // compacted 64-generation database opens and answers within 2x of
        // the same data written in a single generation, and the sharded
        // open beats a forced-serial one on the accreted chain.
        assert!(
            gp.compacted_open_query_s <= 2.0 * gp.onegen_open_query_s,
            "compacted open+query {:.6}s exceeds 2x the 1-gen baseline {:.6}s",
            gp.compacted_open_query_s,
            gp.onegen_open_query_s
        );
        // Only meaningful where a pool can actually exist: on a 1-core
        // runner the sharded open degenerates to the serial loop and the
        // comparison is pure noise.
        let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
        if cores > 1 {
            assert!(
                gp.open_parallel_s < gp.open_serial_s,
                "sharded open {:.6}s not faster than serial {:.6}s on {cores} cores",
                gp.open_parallel_s,
                gp.open_serial_s
            );
        }
    }

    let generations_json = format!(
        "{{\"g\":{},\"rows\":{},\"onegen_open_query_s\":{:.9},\
         \"multi_open_query_s\":{:.9},\"compacted_open_query_s\":{:.9},\
         \"segments\":{},\"open_parallel_s\":{:.9},\"open_serial_s\":{:.9}}}",
        gp.generations,
        gp.rows,
        gp.onegen_open_query_s,
        gp.multi_open_query_s,
        gp.compacted_open_query_s,
        gp.segments,
        gp.open_parallel_s,
        gp.open_serial_s
    );
    let json = format!(
        "{{\"bench\":\"persist_scaling\",\"scale\":{scale},\"edge\":\"scatter\",\"commit_reps\":{reps},\"series\":[{json_rows}],\"generations\":{generations_json}}}\n"
    );
    std::fs::write("BENCH_persist.json", &json).expect("write BENCH_persist.json");
    println!("wrote BENCH_persist.json");
}
