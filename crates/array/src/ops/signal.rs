//! Signal-processing and difference operations (6 complex ops).
//!
//! These are the shifted-window patterns (convolve/correlate/diff/gradient)
//! that motivate ProvRC's relative value transformation: the input window
//! slides with the output index, so the delta interval is constant.

use super::{full_reduce_all, raveled, OpArgs, OpCategory, OpDef};
use crate::array::Array;
use crate::capture::{LineageBuilder, OpResult};

macro_rules! op {
    ($name:literal, $arity:expr, $safe:expr, $apply:ident) => {
        OpDef {
            name: $name,
            category: OpCategory::Complex,
            arity: $arity,
            pipeline_safe: $safe,
            min_ndim: 1,
            apply: $apply,
        }
    };
}

pub(super) fn defs() -> Vec<OpDef> {
    vec![
        op!("convolve", 2, false, convolve),
        op!("correlate", 2, false, correlate),
        op!("diff", 1, true, diff),
        op!("ediff1d", 1, true, ediff1d),
        op!("gradient", 1, true, gradient),
        op!("trapz", 1, true, trapz),
    ]
}

/// 1-D "full" convolution: out[k] = Σ_j a[j] * v[k - j].
fn convolve(inputs: &[&Array], _args: &OpArgs) -> OpResult {
    let a = raveled(inputs[0]);
    let v = raveled(inputs[1]);
    let (n, m) = (a.len(), v.len());
    let out_len = n + m - 1;
    let mut out = Array::zeros(&[out_len]);
    let mut lb = LineageBuilder::new(1, &[inputs[0].ndim(), inputs[1].ndim()]);
    for k in 0..out_len {
        let mut acc = 0.0;
        for j in 0..n {
            if k >= j && k - j < m {
                acc += a.data()[j] * v.data()[k - j];
                lb.add(0, &[k], &inputs[0].unravel(j));
                lb.add(1, &[k], &inputs[1].unravel(k - j));
            }
        }
        out.set(&[k], acc);
    }
    lb.finish(out)
}

/// 1-D "valid" cross-correlation: out[k] = Σ_j a[k + j] * v[j].
fn correlate(inputs: &[&Array], _args: &OpArgs) -> OpResult {
    let a = raveled(inputs[0]);
    let v = raveled(inputs[1]);
    let (n, m) = (a.len(), v.len());
    assert!(n >= m, "correlate expects len(a) >= len(v)");
    let out_len = n - m + 1;
    let mut out = Array::zeros(&[out_len]);
    let mut lb = LineageBuilder::new(1, &[inputs[0].ndim(), inputs[1].ndim()]);
    for k in 0..out_len {
        let mut acc = 0.0;
        for j in 0..m {
            acc += a.data()[k + j] * v.data()[j];
            lb.add(0, &[k], &inputs[0].unravel(k + j));
            lb.add(1, &[k], &inputs[1].unravel(j));
        }
        out.set(&[k], acc);
    }
    lb.finish(out)
}

fn diff(inputs: &[&Array], _args: &OpArgs) -> OpResult {
    let a = raveled(inputs[0]);
    let n = a.len();
    assert!(n >= 2, "diff needs at least two cells");
    let mut out = Array::zeros(&[n - 1]);
    let mut lb = LineageBuilder::new(1, &[inputs[0].ndim()]);
    for i in 0..n - 1 {
        out.set(&[i], a.data()[i + 1] - a.data()[i]);
        lb.add(0, &[i], &inputs[0].unravel(i));
        lb.add(0, &[i], &inputs[0].unravel(i + 1));
    }
    lb.finish(out)
}

fn ediff1d(inputs: &[&Array], args: &OpArgs) -> OpResult {
    diff(inputs, args)
}

/// numpy.gradient: central differences inside, one-sided at the edges.
fn gradient(inputs: &[&Array], _args: &OpArgs) -> OpResult {
    let a = raveled(inputs[0]);
    let n = a.len();
    assert!(n >= 2, "gradient needs at least two cells");
    let d = a.data();
    let mut out = Array::zeros(&[n]);
    let mut lb = LineageBuilder::new(1, &[inputs[0].ndim()]);
    for i in 0..n {
        let (value, cells): (f64, Vec<usize>) = if i == 0 {
            (d[1] - d[0], vec![0, 1])
        } else if i == n - 1 {
            (d[n - 1] - d[n - 2], vec![n - 2, n - 1])
        } else {
            ((d[i + 1] - d[i - 1]) / 2.0, vec![i - 1, i, i + 1])
        };
        out.set(&[i], value);
        for c in cells {
            lb.add(0, &[i], &inputs[0].unravel(c));
        }
    }
    lb.finish(out)
}

/// Trapezoidal integration over the flattened array: a full reduction.
fn trapz(inputs: &[&Array], _args: &OpArgs) -> OpResult {
    let a = raveled(inputs[0]);
    let d = a.data();
    let value = if d.len() < 2 {
        0.0
    } else {
        d.windows(2).map(|w| (w[0] + w[1]) / 2.0).sum()
    };
    full_reduce_all(inputs[0], value)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn convolve_full_mode() {
        // numpy.convolve([1,2,3],[0,1,0.5]) = [0,1,2.5,4,1.5]
        let a = Array::from_vec(&[3], vec![1.0, 2.0, 3.0]);
        let v = Array::from_vec(&[3], vec![0.0, 1.0, 0.5]);
        let r = convolve(&[&a, &v], &OpArgs::none());
        assert_eq!(r.output.data(), &[0.0, 1.0, 2.5, 4.0, 1.5]);
        // Middle output cells read a window of a.
        assert!(r.lineage[0].rows().any(|row| row == [2, 0]));
        assert!(r.lineage[0].rows().any(|row| row == [2, 1]));
        assert!(r.lineage[0].rows().any(|row| row == [2, 2]));
    }

    #[test]
    fn correlate_valid_mode() {
        let a = Array::from_vec(&[4], vec![1.0, 2.0, 3.0, 4.0]);
        let v = Array::from_vec(&[2], vec![1.0, 1.0]);
        let r = correlate(&[&a, &v], &OpArgs::none());
        assert_eq!(r.output.data(), &[3.0, 5.0, 7.0]);
        // Sliding window: out[k] <- a[k], a[k+1].
        assert!(r.lineage[0].rows().any(|row| row == [1, 1]));
        assert!(r.lineage[0].rows().any(|row| row == [1, 2]));
    }

    #[test]
    fn diff_window() {
        let a = Array::from_vec(&[4], vec![1.0, 4.0, 9.0, 16.0]);
        let r = diff(&[&a], &OpArgs::none());
        assert_eq!(r.output.data(), &[3.0, 5.0, 7.0]);
        assert_eq!(r.lineage[0].n_rows(), 6);
    }

    #[test]
    fn gradient_edges_one_sided() {
        let a = Array::from_vec(&[4], vec![0.0, 1.0, 4.0, 9.0]);
        let r = gradient(&[&a], &OpArgs::none());
        assert_eq!(r.output.data(), &[1.0, 2.0, 4.0, 5.0]);
        // Interior cell 1 reads 0, 1, 2.
        let rows: Vec<Vec<i64>> = r.lineage[0]
            .rows()
            .filter(|row| row[0] == 1)
            .map(|row| row.to_vec())
            .collect();
        assert_eq!(rows.len(), 3);
    }

    #[test]
    fn trapz_reduces_all() {
        let a = Array::from_vec(&[3], vec![0.0, 1.0, 0.0]);
        let r = trapz(&[&a], &OpArgs::none());
        assert_eq!(r.output.data(), &[1.0]);
        assert_eq!(r.lineage[0].n_rows(), 3);
    }
}
