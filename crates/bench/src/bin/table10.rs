//! Table X: qualitative estimate of compressible operations and longest
//! operation chains in Kaggle-style data-science workflows (paper §VII.F).
//!
//! 20 simulated notebook traces per dataset; compressibility of each array
//! op is classified by actually compressing its lineage with ProvRC (see
//! `dslog_workloads::kaggle`). The paper's numbers for comparison:
//!
//! ```text
//! Flight : total 54.9±38.8  compressible 40.5±27.6 (76.3±11.0%)  chain 16.4±13.3
//! Netflix: total 58.3±36.3  compressible 40.0±27.2 (66.9± 9.2%)  chain 14.2± 9.0
//! ```
//!
//! Run: `cargo run -p dslog-bench --release --bin table10`

use dslog_bench::{cli_scale_seed, TextTable};
use dslog_workloads::kaggle::{mean_std, simulate, Dataset, NotebookTrace};

fn summarize(name: &str, traces: &[NotebookTrace], table: &mut TextTable) {
    let totals: Vec<f64> = traces.iter().map(|t| t.total_ops as f64).collect();
    let comps: Vec<f64> = traces.iter().map(|t| t.compressible_ops as f64).collect();
    let pcts: Vec<f64> = traces.iter().map(|t| t.compressible_pct()).collect();
    let chains: Vec<f64> = traces.iter().map(|t| t.longest_chain as f64).collect();
    let (tm, ts) = mean_std(&totals);
    let (cm, cs) = mean_std(&comps);
    let (pm, ps) = mean_std(&pcts);
    let (lm, ls) = mean_std(&chains);
    table.row(&[
        name.to_string(),
        format!("{tm:.1} ± {ts:.1}"),
        format!("{cm:.1} ± {cs:.1}"),
        format!("{pm:.1} ± {ps:.1}"),
        format!("{lm:.1} ± {ls:.1}"),
    ]);
}

fn main() {
    let (_, seed) = cli_scale_seed();
    println!("Table X — compressible operations and longest chains in simulated Kaggle workflows (seed {seed})\n");

    let flight = simulate(Dataset::Flight, 20, seed);
    let netflix = simulate(Dataset::Netflix, 20, seed ^ 0x4e7f);

    let mut table = TextTable::new(&[
        "Dataset",
        "Total Op.",
        "Compressible Op.",
        "Compressible (%)",
        "Longest Chain",
    ]);
    summarize("Flight", &flight, &mut table);
    summarize("Netflix", &netflix, &mut table);
    let mut all = flight;
    all.extend(netflix);
    summarize("Total", &all, &mut table);
    println!("{}", table.render());
    println!("(paper: Flight 54.9±38.8 / 40.5±27.6 / 76.3±11.0% / 16.4±13.3; Netflix 58.3±36.3 / 40±27.2 / 66.9±9.2% / 14.2±9.0)");
}
