//! Property-based integration tests over randomly generated relations and
//! pipelines: compression losslessness, query/reference equivalence, merge
//! invariance, and reshaping consistency under arbitrary inputs.

use dslog::api::{Dslog, TableCapture};
use dslog::provrc;
use dslog::query::reference::{self, Direction};
use dslog::query::QueryOptions;
use dslog::table::{LineageTable, Orientation};
use dslog_workloads::random_numpy::{generate, RandomPipelineSpec};
use proptest::prelude::*;
use std::collections::BTreeSet;

/// Strategy: a random lineage relation with bounded arities and extents,
/// plus the (out, in) shapes that bound its indices.
fn arb_relation() -> impl Strategy<Value = (LineageTable, Vec<usize>, Vec<usize>)> {
    (1usize..=2, 1usize..=2).prop_flat_map(|(out_arity, in_arity)| {
        let out_shape = proptest::collection::vec(1usize..=5, out_arity);
        let in_shape = proptest::collection::vec(1usize..=5, in_arity);
        (out_shape, in_shape).prop_flat_map(move |(os, is_)| {
            let max_rows = 60usize;
            let os2 = os.clone();
            let is2 = is_.clone();
            let row = (
                proptest::collection::vec(0i64..5, out_arity),
                proptest::collection::vec(0i64..5, in_arity),
            )
                .prop_map(move |(o, i)| {
                    let o: Vec<i64> = o
                        .iter()
                        .zip(os2.iter())
                        .map(|(&v, &d)| v.min(d as i64 - 1))
                        .collect();
                    let i: Vec<i64> = i
                        .iter()
                        .zip(is2.iter())
                        .map(|(&v, &d)| v.min(d as i64 - 1))
                        .collect();
                    (o, i)
                });
            proptest::collection::vec(row, 0..max_rows).prop_map(move |rows| {
                let mut t = LineageTable::new(os.len(), is_.len());
                for (o, i) in rows {
                    t.push_pair(&o, &i);
                }
                t.normalize();
                (t, os.clone(), is_.clone())
            })
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// ProvRC is lossless in both orientations on arbitrary relations.
    #[test]
    fn compression_lossless_both_orientations((t, os, is_) in arb_relation()) {
        for orientation in [Orientation::Backward, Orientation::Forward] {
            let c = provrc::compress(&t, &os, &is_, orientation);
            prop_assert_eq!(
                c.decompress().unwrap().row_set(),
                t.row_set(),
                "orientation {:?}", orientation
            );
        }
    }

    /// Single-hop in-situ queries equal the brute-force reference for
    /// arbitrary relations and arbitrary query subsets, both directions.
    #[test]
    fn in_situ_single_hop_equals_reference(
        (t, os, is_) in arb_relation(),
        pick in proptest::collection::vec(any::<bool>(), 25),
    ) {
        let mut db = Dslog::new();
        db.define_array("in", &is_).unwrap();
        db.define_array("out", &os).unwrap();
        db.add_lineage("in", "out", &TableCapture::new(t.clone())).unwrap();

        // Backward from a random subset of output cells.
        let out_cells: Vec<Vec<i64>> = enumerate(&os)
            .into_iter()
            .enumerate()
            .filter(|(i, _)| pick[i % pick.len()])
            .map(|(_, c)| c)
            .collect();
        if !out_cells.is_empty() {
            let got = db.prov_query(&["out", "in"], &out_cells).unwrap();
            let want = reference::step(
                &out_cells.iter().cloned().collect::<BTreeSet<_>>(),
                &t,
                Direction::Backward,
            );
            prop_assert_eq!(got.cells.cell_set(), want);
        }

        // Forward from a random subset of input cells.
        let in_cells: Vec<Vec<i64>> = enumerate(&is_)
            .into_iter()
            .enumerate()
            .filter(|(i, _)| !pick[i % pick.len()])
            .map(|(_, c)| c)
            .collect();
        if !in_cells.is_empty() {
            let got = db.prov_query(&["in", "out"], &in_cells).unwrap();
            let want = reference::step(
                &in_cells.iter().cloned().collect::<BTreeSet<_>>(),
                &t,
                Direction::Forward,
            );
            prop_assert_eq!(got.cells.cell_set(), want);
        }
    }

    /// The merge optimization never changes the answer set.
    #[test]
    fn merge_is_answer_invariant((t, os, is_) in arb_relation()) {
        let mut db = Dslog::new();
        db.define_array("in", &is_).unwrap();
        db.define_array("out", &os).unwrap();
        db.add_lineage("in", "out", &TableCapture::new(t)).unwrap();
        let cells = enumerate(&os);
        let merged = db
            .prov_query_opts(&["out", "in"], &cells, QueryOptions { merge: true, ..QueryOptions::default() })
            .unwrap();
        let unmerged = db
            .prov_query_opts(&["out", "in"], &cells, QueryOptions { merge: false, ..QueryOptions::default() })
            .unwrap();
        prop_assert_eq!(merged.cells.cell_set(), unmerged.cells.cell_set());
        prop_assert!(merged.cells.n_boxes() <= unmerged.cells.n_boxes());
    }

    /// Random numpy pipelines: multi-hop forward queries equal the chained
    /// reference join for arbitrary seeds.
    #[test]
    fn random_pipeline_forward_equals_reference(seed in 0u64..500, n_ops in 3usize..7) {
        let p = generate(RandomPipelineSpec { seed, n_ops, initial_cells: 64 });
        let mut db = Dslog::new();
        p.register_into(&mut db).unwrap();

        let shape = p.shape_of("a0").to_vec();
        let cells: Vec<Vec<i64>> = vec![vec![0; shape.len()]];
        let path: Vec<&str> = p.main_path.iter().map(String::as_str).collect();
        let got = db.prov_query(&path, &cells).unwrap();

        let tables = p.main_path_tables();
        let hops: Vec<(&LineageTable, Direction)> =
            tables.iter().map(|t| (*t, Direction::Forward)).collect();
        let want = reference::chain(&cells.into_iter().collect(), &hops);
        prop_assert_eq!(got.cells.cell_set(), want);
    }

    /// Two-hop out-and-back: backward to inputs and forward again always
    /// reaches at least the starting cell when it has lineage.
    #[test]
    fn out_and_back_contains_origin((t, os, is_) in arb_relation()) {
        prop_assume!(!t.is_empty());
        let mut db = Dslog::new();
        db.define_array("in", &is_).unwrap();
        db.define_array("out", &os).unwrap();
        db.add_lineage("in", "out", &TableCapture::new(t.clone())).unwrap();

        let origin = t.row(0)[..t.out_arity()].to_vec();
        let r = db.prov_query(&["out", "in", "out"], std::slice::from_ref(&origin)).unwrap();
        prop_assert!(r.cells.contains_cell(&origin));
    }
}

fn enumerate(shape: &[usize]) -> Vec<Vec<i64>> {
    let mut cells = vec![Vec::new()];
    for &d in shape {
        let mut next = Vec::with_capacity(cells.len() * d);
        for c in cells {
            for v in 0..d as i64 {
                let mut c2 = c.clone();
                c2.push(v);
                next.push(c2);
            }
        }
        cells = next;
    }
    cells
}
