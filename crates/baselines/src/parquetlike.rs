//! The `Parquet` and `Parquet-GZip` baselines: a columnar file format with
//! row groups and per-column-chunk encodings, mirroring Apache Parquet's
//! default integer path (dictionary + RLE/bit-packing hybrid, plain
//! fallback) and its optional per-chunk compression codec (paper §VII.B:
//! "default encoding and row-group partitioning settings", GZip "as
//! suggested by industry practice").
//!
//! Layout:
//!
//! ```text
//! magic "DSPQ" | codec u8 | out_arity u32 | in_arity u32 | n_rows u64 |
//! row_group_size u64 | per row group { per column chunk {
//!     encoding u8 (0 plain, 1 dict) | payload_len varint | payload } }
//! ```

use crate::LineageFormat;
use dslog::table::LineageTable;
use dslog_codecs::varint::{read_uvarint, write_uvarint};
use dslog_codecs::{bitpack, dict, gzip, hybrid};

const MAGIC: &[u8; 4] = b"DSPQ";
/// Parquet's default row group is large; ours is sized for the scaled-down
/// workloads while preserving the chunked structure.
pub const ROW_GROUP_SIZE: usize = 64 * 1024;

const ENC_PLAIN: u8 = 0;
const ENC_DICT: u8 = 1;

const CODEC_NONE: u8 = 0;
const CODEC_GZIP: u8 = 1;

/// The Parquet-like columnar format; `codec` selects per-chunk compression.
pub struct ParquetLike {
    codec: u8,
}

impl ParquetLike {
    /// No chunk compression (the paper's `Parquet`).
    pub fn plain() -> Self {
        Self { codec: CODEC_NONE }
    }

    /// DEFLATE per chunk (the paper's `Parquet-GZip`).
    pub fn gzip() -> Self {
        Self { codec: CODEC_GZIP }
    }
}

fn encode_chunk(values: &[i64]) -> (u8, Vec<u8>) {
    // Plain: raw little-endian i64s.
    let plain_len = values.len() * 8;
    // Dictionary: delta-varint dictionary + hybrid-encoded codes.
    if let Some(encoded) = dict::encode(values) {
        let mut payload = Vec::new();
        write_uvarint(&mut payload, encoded.dict.len() as u64);
        let mut prev = 0i64;
        for &v in &encoded.dict {
            dslog_codecs::varint::write_ivarint(&mut payload, v - prev);
            prev = v;
        }
        let width = bitpack::bits_needed(encoded.dict.len().saturating_sub(1) as u64);
        let codes = hybrid::encode(&encoded.codes, width);
        payload.extend_from_slice(&codes);
        if payload.len() < plain_len {
            return (ENC_DICT, payload);
        }
    }
    let mut payload = Vec::with_capacity(plain_len);
    for &v in values {
        payload.extend_from_slice(&v.to_le_bytes());
    }
    (ENC_PLAIN, payload)
}

fn decode_chunk(encoding: u8, payload: &[u8], n: usize) -> Vec<i64> {
    match encoding {
        ENC_PLAIN => payload
            .chunks_exact(8)
            .take(n)
            .map(|c| i64::from_le_bytes(c.try_into().unwrap()))
            .collect(),
        ENC_DICT => {
            let mut pos = 0;
            let dict_len = read_uvarint(payload, &mut pos).expect("dict len") as usize;
            let mut d = Vec::with_capacity(dict_len);
            let mut prev = 0i64;
            for _ in 0..dict_len {
                prev += dslog_codecs::varint::read_ivarint(payload, &mut pos).expect("dict value");
                d.push(prev);
            }
            let codes = hybrid::decode(&payload[pos..]).expect("hybrid codes");
            codes.iter().map(|&c| d[c as usize]).collect()
        }
        other => panic!("unknown chunk encoding {other}"),
    }
}

impl LineageFormat for ParquetLike {
    fn name(&self) -> &'static str {
        if self.codec == CODEC_GZIP {
            "Parquet-GZip"
        } else {
            "Parquet"
        }
    }

    fn encode(&self, table: &LineageTable) -> Vec<u8> {
        let arity = table.arity();
        let n_rows = table.n_rows();
        let mut out = Vec::new();
        out.extend_from_slice(MAGIC);
        out.push(self.codec);
        out.extend_from_slice(&(table.out_arity() as u32).to_le_bytes());
        out.extend_from_slice(&(table.in_arity() as u32).to_le_bytes());
        out.extend_from_slice(&(n_rows as u64).to_le_bytes());
        out.extend_from_slice(&(ROW_GROUP_SIZE as u64).to_le_bytes());

        let mut col_buf: Vec<i64> = Vec::with_capacity(ROW_GROUP_SIZE);
        let mut group_start = 0usize;
        while group_start < n_rows || (n_rows == 0 && group_start == 0) {
            let group_end = (group_start + ROW_GROUP_SIZE).min(n_rows);
            for k in 0..arity {
                col_buf.clear();
                for i in group_start..group_end {
                    col_buf.push(table.row(i)[k]);
                }
                let (enc, mut payload) = encode_chunk(&col_buf);
                if self.codec == CODEC_GZIP {
                    payload = gzip::compress(&payload);
                }
                out.push(enc);
                write_uvarint(&mut out, payload.len() as u64);
                out.extend_from_slice(&payload);
            }
            group_start = group_end;
            if n_rows == 0 {
                break;
            }
        }
        out
    }

    fn decode(&self, bytes: &[u8]) -> LineageTable {
        assert_eq!(&bytes[..4], MAGIC, "bad ParquetLike magic");
        let codec = bytes[4];
        let out_arity = u32::from_le_bytes(bytes[5..9].try_into().unwrap()) as usize;
        let in_arity = u32::from_le_bytes(bytes[9..13].try_into().unwrap()) as usize;
        let n_rows = u64::from_le_bytes(bytes[13..21].try_into().unwrap()) as usize;
        let group_size = u64::from_le_bytes(bytes[21..29].try_into().unwrap()) as usize;
        let arity = out_arity + in_arity;

        let mut table = LineageTable::with_capacity(out_arity, in_arity, n_rows);
        let mut pos = 29usize;
        let mut remaining = n_rows;
        let mut columns: Vec<Vec<i64>> = vec![Vec::new(); arity];
        while remaining > 0 {
            let rows_here = remaining.min(group_size);
            for col in columns.iter_mut() {
                let enc = bytes[pos];
                pos += 1;
                let plen = read_uvarint(bytes, &mut pos).expect("payload len") as usize;
                let mut payload = &bytes[pos..pos + plen];
                pos += plen;
                let decompressed;
                if codec == CODEC_GZIP {
                    decompressed = gzip::decompress(payload).expect("chunk gunzip");
                    payload = &decompressed;
                }
                *col = decode_chunk(enc, payload, rows_here);
            }
            let mut row = vec![0i64; arity];
            for i in 0..rows_here {
                for (k, col) in columns.iter().enumerate() {
                    row[k] = col[i];
                }
                table.push_row(&row);
            }
            remaining -= rows_here;
        }
        table
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn aggregate_table(n: i64) -> LineageTable {
        // Lineage of a full aggregation: massively repetitive first column.
        let mut t = LineageTable::new(1, 1);
        for i in 0..n {
            t.push_row(&[0, i]);
        }
        t
    }

    #[test]
    fn dictionary_compresses_aggregation() {
        let t = aggregate_table(10_000);
        let plain = ParquetLike::plain().encode(&t);
        let raw_size = t.nbytes();
        assert!(
            plain.len() < raw_size / 4,
            "parquet-like should shine on aggregation lineage: {} vs {}",
            plain.len(),
            raw_size
        );
        assert_eq!(ParquetLike::plain().decode(&plain).row_set(), t.row_set());
    }

    #[test]
    fn gzip_variant_smaller_on_structured() {
        let t = aggregate_table(10_000);
        let plain = ParquetLike::plain().encode(&t);
        let gz = ParquetLike::gzip().encode(&t);
        assert!(gz.len() <= plain.len());
        assert_eq!(ParquetLike::gzip().decode(&gz).row_set(), t.row_set());
    }

    #[test]
    fn random_permutation_roundtrip() {
        let mut t = LineageTable::new(1, 1);
        for i in 0..5000i64 {
            t.push_row(&[i, (i * 2654435761i64) % 5000]);
        }
        t.normalize();
        for f in [ParquetLike::plain(), ParquetLike::gzip()] {
            let bytes = f.encode(&t);
            assert_eq!(f.decode(&bytes).row_set(), t.row_set(), "{}", f.name());
        }
    }

    #[test]
    fn multiple_row_groups() {
        let mut t = LineageTable::new(1, 1);
        let n = (ROW_GROUP_SIZE + 100) as i64;
        for i in 0..n {
            t.push_row(&[i / 2, i]);
        }
        let f = ParquetLike::plain();
        let bytes = f.encode(&t);
        let back = f.decode(&bytes);
        assert_eq!(back.n_rows(), n as usize);
        assert_eq!(back.row_set(), t.row_set());
    }

    #[test]
    fn empty_table_roundtrip() {
        let t = LineageTable::new(1, 1);
        let f = ParquetLike::plain();
        assert!(f.decode(&f.encode(&t)).is_empty());
    }
}
