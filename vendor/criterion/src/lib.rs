//! Offline stand-in for the `criterion` benchmark harness.
//!
//! Implements the subset of criterion's API the DSLog benches use —
//! `criterion_group!`/`criterion_main!`, benchmark groups, `bench_function`,
//! `bench_with_input`, `Bencher::iter`/`iter_batched`, `Throughput`, and
//! `BatchSize` — with a simple but honest measurement loop: a warm-up phase
//! that estimates iterations per sample, then `sample_size` timed samples
//! from which min / mean / max are reported. No plots, no statistics beyond
//! that; enough to compare hot paths run-over-run.
//!
//! A positional CLI argument acts as a substring filter on benchmark ids,
//! mirroring `cargo bench <filter>`. Harness flags criterion ignores
//! (`--bench`, `--test`, …) are accepted and ignored here too.

#![forbid(unsafe_code)]

use std::fmt::{self, Display};
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level benchmark driver; one per `criterion_group!` config.
pub struct Criterion {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
    filter: Option<String>,
    test_mode: bool,
}

/// Harness flags that take no value; anything else starting with `--` is
/// assumed to consume the following token (criterion's value-taking flags
/// like `--sample-size 50`), so that value is never mistaken for a filter.
const VALUELESS_FLAGS: &[&str] = &[
    "--bench",
    "--test",
    "--quiet",
    "--verbose",
    "--list",
    "--noplot",
    "--exact",
];

impl Default for Criterion {
    fn default() -> Self {
        let mut filter = None;
        let mut test_mode = false;
        let mut args = std::env::args().skip(1).peekable();
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--test" => test_mode = true,
                a if VALUELESS_FLAGS.contains(&a) || a.starts_with('-') && a.contains('=') => {}
                a if a.starts_with('-') => {
                    // Unknown flag: swallow its value if one follows.
                    if args.peek().is_some_and(|next| !next.starts_with('-')) {
                        args.next();
                    }
                }
                a => filter = Some(a.to_string()),
            }
        }
        Criterion {
            sample_size: 20,
            warm_up_time: Duration::from_millis(500),
            measurement_time: Duration::from_secs(2),
            filter,
            test_mode,
        }
    }
}

impl Criterion {
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 2, "sample size must be at least 2");
        self.sample_size = n;
        self
    }

    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: None,
            throughput: None,
        }
    }

    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let settings = Settings {
            sample_size: self.sample_size,
            warm_up_time: self.warm_up_time,
            measurement_time: self.measurement_time,
            test_mode: self.test_mode,
        };
        run_benchmark(&self.filter, &id.full(), settings, None, f);
        self
    }
}

/// A named group of related benchmarks (criterion's `BenchmarkGroup`).
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n >= 2, "sample size must be at least 2");
        self.sample_size = Some(n);
        self
    }

    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let full = format!("{}/{}", self.name, id.full());
        let settings = self.settings();
        run_benchmark(&self.criterion.filter, &full, settings, self.throughput, f);
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }

    pub fn finish(self) {}

    fn settings(&self) -> Settings {
        Settings {
            sample_size: self.sample_size.unwrap_or(self.criterion.sample_size),
            warm_up_time: self.criterion.warm_up_time,
            measurement_time: self.criterion.measurement_time,
            test_mode: self.criterion.test_mode,
        }
    }
}

#[derive(Clone, Copy)]
struct Settings {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
    test_mode: bool,
}

/// Identifies one benchmark: a function name plus an optional parameter.
pub struct BenchmarkId {
    function: String,
    parameter: Option<String>,
}

impl BenchmarkId {
    pub fn new(function: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            function: function.to_string(),
            parameter: Some(parameter.to_string()),
        }
    }

    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            function: String::new(),
            parameter: Some(parameter.to_string()),
        }
    }

    fn full(&self) -> String {
        match &self.parameter {
            Some(p) if self.function.is_empty() => p.clone(),
            Some(p) => format!("{}/{}", self.function, p),
            None => self.function.clone(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId {
            function: s.to_string(),
            parameter: None,
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId {
            function: s,
            parameter: None,
        }
    }
}

/// Throughput annotation: turns per-iteration time into a rate.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

/// How `iter_batched` amortizes setup cost (criterion's `BatchSize`).
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// Passed to the benchmark closure; collects timed iterations.
pub struct Bencher {
    iters_per_sample: u64,
    samples: Vec<Duration>,
    sample_size: usize,
    calibrating: bool,
}

impl Bencher {
    pub fn iter<R>(&mut self, mut routine: impl FnMut() -> R) {
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..self.iters_per_sample {
                black_box(routine());
            }
            self.samples.push(start.elapsed());
            if self.calibrating {
                return;
            }
        }
    }

    pub fn iter_batched<I, O>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> O,
        _size: BatchSize,
    ) {
        for _ in 0..self.sample_size {
            let mut elapsed = Duration::ZERO;
            for _ in 0..self.iters_per_sample {
                let input = setup();
                let start = Instant::now();
                black_box(routine(input));
                elapsed += start.elapsed();
            }
            self.samples.push(elapsed);
            if self.calibrating {
                return;
            }
        }
    }
}

fn run_benchmark<F>(
    filter: &Option<String>,
    id: &str,
    settings: Settings,
    throughput: Option<Throughput>,
    mut f: F,
) where
    F: FnMut(&mut Bencher),
{
    if let Some(filter) = filter {
        if !id.contains(filter.as_str()) {
            return;
        }
    }
    if settings.test_mode {
        // `cargo test --benches` smoke mode: run one iteration, no timing.
        let mut b = Bencher {
            iters_per_sample: 1,
            samples: Vec::new(),
            sample_size: 1,
            calibrating: true,
        };
        f(&mut b);
        println!("test {id} ... ok");
        return;
    }

    // Calibration: time a single iteration to size samples so the whole
    // benchmark lands near `measurement_time`.
    let mut calibrator = Bencher {
        iters_per_sample: 1,
        samples: Vec::new(),
        sample_size: 1,
        calibrating: true,
    };
    let warm_up_start = Instant::now();
    let mut one_iter = Duration::ZERO;
    let mut calibration_runs = 0u64;
    while warm_up_start.elapsed() < settings.warm_up_time || calibration_runs == 0 {
        calibrator.samples.clear();
        f(&mut calibrator);
        one_iter = calibrator
            .samples
            .first()
            .copied()
            .unwrap_or(Duration::ZERO);
        calibration_runs += 1;
        if one_iter > settings.warm_up_time {
            break;
        }
    }

    let per_sample = settings.measurement_time.as_secs_f64() / settings.sample_size as f64;
    let iters = if one_iter.is_zero() {
        1000
    } else {
        (per_sample / one_iter.as_secs_f64()).clamp(1.0, 1e9) as u64
    };

    let mut bencher = Bencher {
        iters_per_sample: iters,
        samples: Vec::with_capacity(settings.sample_size),
        sample_size: settings.sample_size,
        calibrating: false,
    };
    f(&mut bencher);

    let per_iter: Vec<f64> = bencher
        .samples
        .iter()
        .map(|d| d.as_secs_f64() / iters as f64)
        .collect();
    if per_iter.is_empty() {
        return;
    }
    let min = per_iter.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = per_iter.iter().cloned().fold(0.0, f64::max);
    let mean = per_iter.iter().sum::<f64>() / per_iter.len() as f64;

    let rate = throughput.map(|t| match t {
        Throughput::Elements(n) => format!("  thrpt: {}/s", si(n as f64 / mean, "elem")),
        Throughput::Bytes(n) => format!("  thrpt: {}/s", si(n as f64 / mean, "B")),
    });
    println!(
        "{id:<50} time: [{} {} {}]{}",
        fmt_time(min),
        fmt_time(mean),
        fmt_time(max),
        rate.unwrap_or_default()
    );
}

fn fmt_time(secs: f64) -> String {
    if secs < 1e-6 {
        format!("{:.2} ns", secs * 1e9)
    } else if secs < 1e-3 {
        format!("{:.2} µs", secs * 1e6)
    } else if secs < 1.0 {
        format!("{:.2} ms", secs * 1e3)
    } else {
        format!("{secs:.3} s")
    }
}

fn si(rate: f64, unit: &str) -> String {
    if rate >= 1e9 {
        format!("{:.2} G{unit}", rate / 1e9)
    } else if rate >= 1e6 {
        format!("{:.2} M{unit}", rate / 1e6)
    } else if rate >= 1e3 {
        format!("{:.2} K{unit}", rate / 1e3)
    } else {
        format!("{rate:.1} {unit}")
    }
}

impl fmt::Debug for Criterion {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Criterion")
            .field("sample_size", &self.sample_size)
            .finish()
    }
}

/// Defines a named group of benchmark functions, optionally with a shared
/// `Criterion` configuration.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Emits `fn main` running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_and_reports() {
        let mut c = Criterion::default()
            .sample_size(2)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(5));
        let mut group = c.benchmark_group("g");
        group.throughput(Throughput::Elements(10));
        let mut ran = false;
        group.bench_with_input(BenchmarkId::new("f", 1), &3u64, |b, &x| {
            ran = true;
            b.iter(|| x * 2)
        });
        group.finish();
        assert!(ran);
    }

    #[test]
    fn iter_batched_consumes_inputs() {
        let mut c = Criterion::default()
            .sample_size(2)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(5));
        c.bench_function("batched", |b| {
            b.iter_batched(|| vec![1, 2, 3], |v| v.len(), BatchSize::SmallInput)
        });
    }
}
