//! Durable lineage databases: capture once, save to disk, reopen later.
//!
//! The paper measures "the file size of the database files that were
//! ultimately served to DuckDB" — DSLog-rs makes that durable form a
//! first-class API: `Dslog::save` writes a directory of ProvRC-compressed
//! table files plus a catalog, `Dslog::open` maps it back, and queries run
//! in situ on the reopened database without recompression.
//!
//! Run with: `cargo run --release --example save_and_reopen`

use dslog::api::Dslog;
use dslog_workloads::pipelines::resnet_workflow;
use std::time::Instant;

fn main() {
    let dir = std::env::temp_dir().join(format!("dslog-example-db-{}", std::process::id()));

    // ------------------------------------------------------------------
    // Session 1: capture a seven-step ResNet block and persist it.
    // ------------------------------------------------------------------
    let pipeline = resnet_workflow(32, 0xE5);
    let mut db = Dslog::new();
    pipeline.register_into(&mut db).unwrap();
    println!(
        "session 1: captured {} hops, {} B compressed in memory",
        pipeline.hops.len(),
        db.storage().storage_bytes()
    );

    let t0 = Instant::now();
    db.save(&dir, /* gzip: */ true).unwrap();
    let disk_bytes: u64 = std::fs::read_dir(&dir)
        .unwrap()
        .map(|e| e.unwrap().metadata().unwrap().len())
        .sum();
    println!(
        "           saved to {} in {:?} ({disk_bytes} B on disk, ProvRC-GZip)",
        dir.display(),
        t0.elapsed()
    );
    drop(db);

    // ------------------------------------------------------------------
    // Session 2: a different process/day — reopen and query immediately.
    // ------------------------------------------------------------------
    let t0 = Instant::now();
    let db = Dslog::open(&dir).unwrap();
    println!("\nsession 2: reopened in {:?}", t0.elapsed());
    println!("           arrays: {:?}", db.storage().array_names());

    // Backward: which input pixels shaped output[10, 10]?
    let back_path: Vec<&str> = pipeline
        .main_path
        .iter()
        .rev()
        .map(String::as_str)
        .collect();
    let t0 = Instant::now();
    let back = db.prov_query(&back_path, &[vec![10, 10]]).unwrap();
    println!(
        "           backward output[10,10] -> input: {} pixel(s) in {} box(es), {:?}",
        back.cells.volume(),
        back.cells.n_boxes(),
        t0.elapsed()
    );

    // Forward: the receptive fan-out of one input pixel.
    let fwd_path: Vec<&str> = pipeline.main_path.iter().map(String::as_str).collect();
    let fwd = db.prov_query(&fwd_path, &[vec![10, 10]]).unwrap();
    println!(
        "           forward input[10,10] -> output: {} cell(s) in {} box(es)",
        fwd.cells.volume(),
        fwd.cells.n_boxes()
    );

    // The residual (skip-connection) hop is preserved across save/open too.
    let skip = db
        .prov_query(&["residual", "input"], &[vec![16, 16]])
        .unwrap();
    assert!(
        skip.cells.contains_cell(&[16, 16]),
        "skip connection must link residual[16,16] to input[16,16]"
    );
    println!("           residual skip-connection lineage intact after reopen");

    std::fs::remove_dir_all(&dir).unwrap();
    println!("\nok: lineage database saved, reopened, and queried in situ");
}
