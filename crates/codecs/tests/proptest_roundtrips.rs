//! Property-based roundtrip tests for every codec in `dslog-codecs`.
//!
//! Runs are reproducible: the vendored proptest runner pins a fixed RNG
//! seed (`proptest::test_runner::DEFAULT_RNG_SEED`; override with the
//! `PROPTEST_RNG_SEED` env var when hunting for new counterexamples) and a
//! failing case's seed is appended under this crate's
//! `proptest-regressions/` directory (commit that file!) and replayed
//! before fresh cases on every subsequent run.

use dslog_codecs::{bitpack, deflate, dict, gzip, huffman, hybrid, rle, varint};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn uvarint_roundtrip(v in any::<u64>()) {
        let mut buf = Vec::new();
        varint::write_uvarint(&mut buf, v);
        let mut pos = 0;
        prop_assert_eq!(varint::read_uvarint(&buf, &mut pos).unwrap(), v);
        prop_assert_eq!(pos, buf.len());
    }

    #[test]
    fn ivarint_roundtrip(v in any::<i64>()) {
        let mut buf = Vec::new();
        varint::write_ivarint(&mut buf, v);
        let mut pos = 0;
        prop_assert_eq!(varint::read_ivarint(&buf, &mut pos).unwrap(), v);
    }

    #[test]
    fn zigzag_involution(v in any::<i64>()) {
        prop_assert_eq!(varint::unzigzag(varint::zigzag(v)), v);
    }

    #[test]
    fn rle_roundtrip(values in prop::collection::vec(-100i64..100, 0..500)) {
        prop_assert_eq!(rle::decode(&rle::encode(&values)).unwrap(), values);
    }

    #[test]
    fn rle_roundtrip_wide(values in prop::collection::vec(any::<i64>(), 0..100)) {
        prop_assert_eq!(rle::decode(&rle::encode(&values)).unwrap(), values);
    }

    #[test]
    fn bitpack_roundtrip(width in 1u32..33, values in prop::collection::vec(any::<u64>(), 0..200)) {
        let mask = if width == 64 { u64::MAX } else { (1u64 << width) - 1 };
        let values: Vec<u64> = values.into_iter().map(|v| v & mask).collect();
        let packed = bitpack::pack(&values, width);
        prop_assert_eq!(bitpack::unpack(&packed, width, values.len()).unwrap(), values);
    }

    #[test]
    fn hybrid_roundtrip(values in prop::collection::vec(0u32..4096, 0..400)) {
        let width = bitpack::width_for(&values.iter().map(|&v| u64::from(v)).collect::<Vec<_>>());
        let enc = hybrid::encode(&values, width);
        prop_assert_eq!(hybrid::decode(&enc).unwrap(), values);
    }

    #[test]
    fn hybrid_roundtrip_runny(
        runs in prop::collection::vec((0u32..16, 1usize..40), 0..40)
    ) {
        let values: Vec<u32> = runs
            .iter()
            .flat_map(|&(v, n)| std::iter::repeat_n(v, n))
            .collect();
        let enc = hybrid::encode(&values, 4);
        prop_assert_eq!(hybrid::decode(&enc).unwrap(), values);
    }

    #[test]
    fn dict_roundtrip(values in prop::collection::vec(any::<i64>(), 0..300)) {
        let enc = dict::encode(&values).unwrap();
        prop_assert_eq!(dict::decode(&enc), values);
    }

    #[test]
    fn huffman_bytes_roundtrip(data in prop::collection::vec(any::<u8>(), 0..2000)) {
        let comp = huffman::compress_bytes(&data);
        prop_assert_eq!(huffman::decompress_bytes(&comp).unwrap(), data);
    }

    #[test]
    fn deflate_roundtrip(data in prop::collection::vec(any::<u8>(), 0..3000)) {
        let comp = deflate::compress(&data);
        prop_assert_eq!(deflate::decompress(&comp).unwrap(), data);
    }

    #[test]
    fn deflate_roundtrip_structured(
        runs in prop::collection::vec((any::<u8>(), 1usize..60), 0..60)
    ) {
        let data: Vec<u8> = runs
            .iter()
            .flat_map(|&(v, n)| std::iter::repeat_n(v, n))
            .collect();
        let comp = deflate::compress(&data);
        prop_assert_eq!(deflate::decompress(&comp).unwrap(), data);
    }

    #[test]
    fn gzip_roundtrip(data in prop::collection::vec(any::<u8>(), 0..2000)) {
        let comp = gzip::compress(&data);
        prop_assert_eq!(gzip::decompress(&comp).unwrap(), data);
    }
}
