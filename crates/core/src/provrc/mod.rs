//! The ProvRC lineage compression algorithm (paper §IV).
//!
//! ProvRC has two subroutines applied in order:
//!
//! 1. **Multi-attribute range encoding over the secondary attributes**
//!    (§IV.A step 1): each secondary attribute, processed last-to-first, is
//!    collapsed into contiguous integer ranges wherever all other attributes
//!    agree.
//! 2. **Relative value transformation + range encoding over the primary
//!    attributes** (§IV.A step 2): a secondary attribute may be re-expressed
//!    as a delta against the primary attribute being encoded (`a = b + δ`),
//!    opening range-merge opportunities that absolute values hide.
//!
//! For the *backward* orientation (the default stored form) the primary side
//! is the output attributes; for the *forward* orientation (Table III) the
//! roles are swapped — one parameterized implementation serves both.
//!
//! Implementation notes vs. the paper (documented in DESIGN.md §3.2):
//! * We re-sort before every per-attribute pass instead of sorting once;
//!   this finds strictly more merges and each merge remains an exact
//!   union-of-Cartesian-products rewrite, so losslessness is unaffected.
//! * When encoding primary attribute `b_j`, the paper's condition "some
//!   column of `{a_i, a_i b_1, …, a_i b_l}` agrees" reduces to
//!   "`a_i` agrees absolutely OR `a_i − b_j` agrees" because all other
//!   primary attributes are fixed inside a candidate run. We enumerate the
//!   abs/rel choice per still-absolute secondary attribute (≤ 2^m combos,
//!   capped heuristically for very wide relations).
//!
//! Two pipelines implement the same pass sequence and produce identical
//! output. The **fast** columnar pipeline (`columnar`, the
//! [`CompressOptions::fast`] default) sorts packed key permutations over a
//! struct-of-arrays arena; the row-of-structs reference implementation
//! (`range_encode` + `relative`) survives as the `fast = false`
//! ablation, mirroring the query engine's scan-vs-probe switch. Parity is
//! property-tested in `provrc_fast_parity.rs`.

mod columnar;
mod range_encode;
mod relative;
pub mod reshape;

use crate::table::{Cell, CompressedTable, LineageTable, Orientation};
use range_encode::secondary_pass;
use relative::primary_passes;

pub(crate) use relative::{WCell, WRow};

/// Tuning knobs for ProvRC compression.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CompressOptions {
    /// Use the columnar fast pipeline (packed sort keys over a
    /// struct-of-arrays arena, mask pruning, reusable scratch). Disabling
    /// this selects the row-of-structs reference implementation — the
    /// ablation — whose output is bit-identical.
    pub fast: bool,
    /// Allow multi-threading: scoped-thread parallel sort and run-chunked
    /// merge scans inside a pass (fast pipeline only), and worker fan-out
    /// across batch jobs in [`compress_batch_parallel_opts`].
    pub parallel: bool,
    /// Minimum active rows in a pass before threads are spawned.
    pub parallel_threshold: usize,
}

impl Default for CompressOptions {
    fn default() -> Self {
        Self {
            fast: true,
            parallel: true,
            parallel_threshold: 1 << 14,
        }
    }
}

/// Compress `table` (an uncompressed lineage relation) with ProvRC, using
/// the default [`CompressOptions`] (fast columnar pipeline).
///
/// `out_shape` / `in_shape` are the shapes of the output and input arrays;
/// they are recorded as attribute extents (used by index reshaping and for
/// reporting) and do not affect correctness of compression itself.
pub fn compress(
    table: &LineageTable,
    out_shape: &[usize],
    in_shape: &[usize],
    orientation: Orientation,
) -> CompressedTable {
    compress_opts(
        table,
        out_shape,
        in_shape,
        orientation,
        CompressOptions::default(),
    )
}

/// [`compress`] with explicit options (pipeline selection, threading).
pub fn compress_opts(
    table: &LineageTable,
    out_shape: &[usize],
    in_shape: &[usize],
    orientation: Orientation,
    opts: CompressOptions,
) -> CompressedTable {
    assert_eq!(table.out_arity(), out_shape.len(), "out shape arity");
    assert_eq!(table.in_arity(), in_shape.len(), "in shape arity");
    if opts.fast {
        columnar::compress(table, out_shape, in_shape, orientation, opts)
    } else {
        compress_reference(table, out_shape, in_shape, orientation)
    }
}

/// The attribute extents (primary-then-secondary order) for a compressed
/// table over the given array shapes.
pub(crate) fn extents_for(
    out_shape: &[usize],
    in_shape: &[usize],
    orientation: Orientation,
) -> Vec<i64> {
    match orientation {
        Orientation::Backward => out_shape
            .iter()
            .chain(in_shape.iter())
            .map(|&d| d as i64)
            .collect(),
        Orientation::Forward => in_shape
            .iter()
            .chain(out_shape.iter())
            .map(|&d| d as i64)
            .collect(),
    }
}

/// The row-of-structs reference implementation (`fast = false`).
fn compress_reference(
    table: &LineageTable,
    out_shape: &[usize],
    in_shape: &[usize],
    orientation: Orientation,
) -> CompressedTable {
    let normalized = table.normalized();
    let (prim_arity, sec_arity) = match orientation {
        Orientation::Backward => (table.out_arity(), table.in_arity()),
        Orientation::Forward => (table.in_arity(), table.out_arity()),
    };

    // Build working rows: primary attributes first.
    let mut rows: Vec<WRow> = Vec::with_capacity(normalized.n_rows());
    for row in normalized.rows() {
        let (out_part, in_part) = row.split_at(table.out_arity());
        let (prim_part, sec_part) = match orientation {
            Orientation::Backward => (out_part, in_part),
            Orientation::Forward => (in_part, out_part),
        };
        rows.push(WRow {
            prim: prim_part
                .iter()
                .map(|&v| crate::interval::Interval::point(v))
                .collect(),
            sec: sec_part
                .iter()
                .map(|&v| WCell::Abs(crate::interval::Interval::point(v)))
                .collect(),
        });
    }

    // Step 1: multi-attribute range encoding over secondary attributes,
    // last attribute first (paper: a_m, …, a_1).
    for k in (0..sec_arity).rev() {
        secondary_pass(&mut rows, k);
    }

    // Step 2: relative transformation + range encoding over primary
    // attributes, last attribute first (paper: b_l, …, b_1).
    for j in (0..prim_arity).rev() {
        primary_passes(&mut rows, j, sec_arity);
    }

    // Materialize.
    let extents = extents_for(out_shape, in_shape, orientation);
    let mut out = CompressedTable::new(orientation, prim_arity, sec_arity, extents);
    let mut row_buf: Vec<Cell> = Vec::with_capacity(prim_arity + sec_arity);
    for wrow in rows {
        row_buf.clear();
        row_buf.extend(wrow.prim.iter().map(|&ivl| Cell::Abs(ivl)));
        row_buf.extend(wrow.sec.iter().map(|c| match *c {
            WCell::Abs(ivl) => Cell::Abs(ivl),
            WCell::Rel { anchor, delta } => Cell::Rel { anchor, delta },
        }));
        out.push_row(&row_buf);
    }
    out
}

/// Compress in both orientations at once (paper §IV.C: "either both versions
/// can be stored or one version depending on the distribution of forward and
/// reverse queries").
pub fn compress_both(
    table: &LineageTable,
    out_shape: &[usize],
    in_shape: &[usize],
) -> (CompressedTable, CompressedTable) {
    compress_both_opts(table, out_shape, in_shape, CompressOptions::default())
}

/// [`compress_both`] with explicit options. With `parallel` enabled and
/// more than one hardware thread, the two orientations compress on
/// concurrent scoped threads.
pub fn compress_both_opts(
    table: &LineageTable,
    out_shape: &[usize],
    in_shape: &[usize],
    opts: CompressOptions,
) -> (CompressedTable, CompressedTable) {
    let hw = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    if opts.parallel && hw > 1 {
        // Each orientation keeps its own in-pass parallelism budget; the OS
        // schedules the (bounded) oversubscription.
        let mut pair: (Option<CompressedTable>, Option<CompressedTable>) = (None, None);
        std::thread::scope(|scope| {
            let (b, f) = (&mut pair.0, &mut pair.1);
            scope.spawn(|| {
                *b = Some(compress_opts(
                    table,
                    out_shape,
                    in_shape,
                    Orientation::Backward,
                    opts,
                ));
            });
            *f = Some(compress_opts(
                table,
                out_shape,
                in_shape,
                Orientation::Forward,
                opts,
            ));
        });
        (pair.0.expect("backward job"), pair.1.expect("forward job"))
    } else {
        (
            compress_opts(table, out_shape, in_shape, Orientation::Backward, opts),
            compress_opts(table, out_shape, in_shape, Orientation::Forward, opts),
        )
    }
}

/// One batch-compression job: a relation plus its array shapes.
pub type CompressJob<'a> = (&'a LineageTable, &'a [usize], &'a [usize]);

/// Compress several relations in parallel with scoped worker threads,
/// using the default [`CompressOptions`].
pub fn compress_batch_parallel(
    jobs: &[CompressJob<'_>],
    orientation: Orientation,
) -> Vec<CompressedTable> {
    compress_batch_parallel_opts(jobs, orientation, CompressOptions::default())
}

/// Compress several relations in parallel with scoped worker threads.
///
/// The paper notes "ProvRC is also highly parallelizable, so we expect
/// significant performance gains from a multi-threaded implementation" —
/// this parallelizes across tables (one per operation/array pair), which is
/// the granularity `register_operation` produces: workers steal the next
/// job off a shared atomic counter, so skewed job sizes stay balanced.
/// When several jobs run concurrently, in-pass parallelism is disabled
/// (the hardware threads are already saturated by job-level fan-out).
/// Results keep job order.
pub fn compress_batch_parallel_opts(
    jobs: &[CompressJob<'_>],
    orientation: Orientation,
    opts: CompressOptions,
) -> Vec<CompressedTable> {
    if jobs.len() <= 1 || !opts.parallel {
        return jobs
            .iter()
            .map(|(t, o, i)| compress_opts(t, o, i, orientation, opts))
            .collect();
    }
    let n_threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
        .min(jobs.len());
    let job_opts = if n_threads > 1 {
        CompressOptions {
            parallel: false,
            ..opts
        }
    } else {
        opts
    };
    let next = std::sync::atomic::AtomicUsize::new(0);
    let mut results: Vec<Option<CompressedTable>> = (0..jobs.len()).map(|_| None).collect();
    let slots: Vec<dslog_sync::Mutex<&mut Option<CompressedTable>>> = results
        .iter_mut()
        .map(|slot| dslog_sync::Mutex::new(&dslog_sync::ranks::BATCH_RESULT, slot))
        .collect();
    std::thread::scope(|scope| {
        for _ in 0..n_threads {
            scope.spawn(|| loop {
                let idx = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                if idx >= jobs.len() {
                    break;
                }
                let (t, o, i) = jobs[idx];
                let compressed = compress_opts(t, o, i, orientation, job_opts);
                **slots[idx].lock() = Some(compressed);
            });
        }
    });
    drop(slots);
    results
        .into_iter()
        .map(|r| r.expect("job completed"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interval::Interval;

    /// Paper Fig. 1(B): `B = numpy.sum(A, axis=1)`, 3x2 input, 1-based.
    fn paper_sum_table() -> LineageTable {
        LineageTable::from_rows(
            1,
            2,
            &[
                &[1, 1, 1],
                &[1, 1, 2],
                &[2, 2, 1],
                &[2, 2, 2],
                &[3, 3, 1],
                &[3, 3, 2],
            ],
        )
    }

    #[test]
    fn paper_running_example_compresses_to_one_row() {
        // Shapes don't matter for the merge structure; use 1-based-compatible
        // extents large enough to cover the indices.
        let t = paper_sum_table();
        let c = compress(&t, &[4], &[4, 3], Orientation::Backward);
        // Paper Table II final: single row (b1=[1,3], a1 rel 0, a2=[1,2]).
        assert_eq!(c.n_rows(), 1, "expected 1 row, got:\n{c}");
        let row = c.row(0);
        assert_eq!(row[0], Cell::abs(1, 3));
        assert_eq!(
            row[1],
            Cell::Rel {
                anchor: 0,
                delta: Interval::point(0)
            }
        );
        assert_eq!(row[2], Cell::abs(1, 2));
    }

    #[test]
    fn paper_forward_table_iii() {
        let t = paper_sum_table();
        let c = compress(&t, &[4], &[4, 3], Orientation::Forward);
        // Paper Table III: a1=[1,3], a2=[1,2], b1 rel to a1 with delta 0.
        assert_eq!(c.n_rows(), 1, "expected 1 row, got:\n{c}");
        let row = c.row(0);
        assert_eq!(row[0], Cell::abs(1, 3));
        assert_eq!(row[1], Cell::abs(1, 2));
        assert_eq!(
            row[2],
            Cell::Rel {
                anchor: 0,
                delta: Interval::point(0)
            }
        );
    }

    #[test]
    fn losslessness_on_running_example() {
        let t = paper_sum_table().normalized();
        for orientation in [Orientation::Backward, Orientation::Forward] {
            let c = compress(&t, &[4], &[4, 3], orientation);
            assert_eq!(c.decompress().unwrap().row_set(), t.row_set());
        }
    }

    #[test]
    fn aggregate_all_to_all_single_row() {
        // Fig. 2: 4x4 aggregated into one cell — all-to-all.
        let mut t = LineageTable::new(1, 2);
        for i in 0..4 {
            for j in 0..4 {
                t.push_row(&[0, i, j]);
            }
        }
        let c = compress(&t, &[1], &[4, 4], Orientation::Backward);
        assert_eq!(c.n_rows(), 1);
        assert_eq!(c.row(0)[0], Cell::point(0));
        assert_eq!(c.row(0)[1], Cell::abs(0, 3));
        assert_eq!(c.row(0)[2], Cell::abs(0, 3));
    }

    #[test]
    fn elementwise_one_to_one_single_row() {
        // Fig. 3: one-to-one over arbitrary n.
        let n = 100;
        let mut t = LineageTable::new(1, 1);
        for i in 0..n {
            t.push_row(&[i, i]);
        }
        let c = compress(&t, &[n as usize], &[n as usize], Orientation::Backward);
        assert_eq!(c.n_rows(), 1, "got:\n{c}");
        assert_eq!(c.row(0)[0], Cell::abs(0, n - 1));
        assert_eq!(
            c.row(0)[1],
            Cell::Rel {
                anchor: 0,
                delta: Interval::point(0)
            }
        );
    }

    #[test]
    fn identity_2d_single_row() {
        let (h, w) = (8i64, 5i64);
        let mut t = LineageTable::new(2, 2);
        for i in 0..h {
            for j in 0..w {
                t.push_row(&[i, j, i, j]);
            }
        }
        let c = compress(
            &t,
            &[h as usize, w as usize],
            &[h as usize, w as usize],
            Orientation::Backward,
        );
        assert_eq!(c.n_rows(), 1, "got:\n{c}");
        let zero = Interval::point(0);
        assert_eq!(c.row(0)[0], Cell::abs(0, h - 1));
        assert_eq!(c.row(0)[1], Cell::abs(0, w - 1));
        assert_eq!(
            c.row(0)[2],
            Cell::Rel {
                anchor: 0,
                delta: zero
            }
        );
        assert_eq!(
            c.row(0)[3],
            Cell::Rel {
                anchor: 1,
                delta: zero
            }
        );
    }

    #[test]
    fn convolution_window_single_row() {
        // 1-D convolution with window [-1, +1] on interior cells:
        // out i ← in {i-1, i, i+1} for i in 1..n-1.
        let n = 50i64;
        let mut t = LineageTable::new(1, 1);
        for i in 1..n - 1 {
            for d in -1..=1 {
                t.push_row(&[i, i + d]);
            }
        }
        let c = compress(&t, &[n as usize], &[n as usize], Orientation::Backward);
        assert_eq!(c.n_rows(), 1, "got:\n{c}");
        assert_eq!(c.row(0)[0], Cell::abs(1, n - 2));
        assert_eq!(
            c.row(0)[1],
            Cell::Rel {
                anchor: 0,
                delta: Interval::new(-1, 1)
            }
        );
    }

    #[test]
    fn matmul_lineage_compresses_to_constant_rows() {
        // C = A·B lineage for the A side: C[i,j] ← A[i, k] for all k.
        let (n, k_dim, m) = (6i64, 4i64, 5i64);
        let mut t = LineageTable::new(2, 2);
        for i in 0..n {
            for j in 0..m {
                for k in 0..k_dim {
                    t.push_row(&[i, j, i, k]);
                }
            }
        }
        let c = compress(
            &t,
            &[n as usize, m as usize],
            &[n as usize, k_dim as usize],
            Orientation::Backward,
        );
        assert_eq!(c.n_rows(), 1, "got:\n{c}");
        assert_eq!(c.decompress().unwrap().row_set(), t.normalized().row_set());
    }

    #[test]
    fn sort_permutation_does_not_compress() {
        // Worst case (paper: "Sort is the worst case for ProvRC").
        // A pseudo-random permutation with no contiguous structure.
        let n = 64i64;
        let mut t = LineageTable::new(1, 1);
        for i in 0..n {
            t.push_row(&[i, (i * 37 + 11) % n]);
        }
        let c = compress(&t, &[n as usize], &[n as usize], Orientation::Backward);
        // A couple of accidental merges can occur, but compression must be
        // marginal, and losslessness must hold.
        assert!(c.n_rows() as i64 > n / 2, "rows: {}", c.n_rows());
        assert_eq!(c.decompress().unwrap().row_set(), t.normalized().row_set());
    }

    #[test]
    fn diagonal_shared_anchor_roundtrip() {
        // B[i] = A[i,i]: both input attributes anchor to b1.
        let n = 10i64;
        let mut t = LineageTable::new(1, 2);
        for i in 0..n {
            t.push_row(&[i, i, i]);
        }
        let c = compress(
            &t,
            &[n as usize],
            &[n as usize, n as usize],
            Orientation::Backward,
        );
        assert_eq!(c.n_rows(), 1, "got:\n{c}");
        assert_eq!(c.decompress().unwrap().row_set(), t.row_set());
    }

    #[test]
    fn empty_table() {
        let t = LineageTable::new(1, 1);
        let c = compress(&t, &[1], &[1], Orientation::Backward);
        assert_eq!(c.n_rows(), 0);
        assert!(c.decompress().unwrap().is_empty());
    }

    #[test]
    fn repetition_tile_lineage() {
        // np.tile(a, 2): out i ← in (i mod n).
        let n = 16i64;
        let mut t = LineageTable::new(1, 1);
        for i in 0..2 * n {
            t.push_row(&[i, i % n]);
        }
        let c = compress(&t, &[2 * n as usize], &[n as usize], Orientation::Backward);
        // Two runs: b in [0,n-1] rel delta 0; b in [n,2n-1] rel delta -n.
        assert_eq!(c.n_rows(), 2, "got:\n{c}");
        assert_eq!(c.decompress().unwrap().row_set(), t.row_set());
    }

    #[test]
    fn parallel_batch_matches_serial() {
        let mut jobs_data = Vec::new();
        for k in 1..8i64 {
            let mut t = LineageTable::new(1, 1);
            for i in 0..40 {
                t.push_row(&[i, (i + k) % 40]);
            }
            jobs_data.push(t);
        }
        let shape = [40usize];
        let jobs: Vec<super::CompressJob<'_>> = jobs_data
            .iter()
            .map(|t| (t, &shape[..], &shape[..]))
            .collect();
        let parallel = super::compress_batch_parallel(&jobs, Orientation::Backward);
        for (t, c) in jobs_data.iter().zip(parallel.iter()) {
            let serial = compress(t, &shape, &shape, Orientation::Backward);
            assert_eq!(c, &serial);
        }
    }

    #[test]
    fn fast_and_ablation_agree_on_canonical_patterns() {
        // Every canonical lineage shape, both orientations, forced-threaded
        // and serial: the fast pipeline must be bit-identical to the
        // reference implementation.
        let mut tables: Vec<(LineageTable, Vec<usize>, Vec<usize>)> = Vec::new();
        tables.push((paper_sum_table(), vec![4], vec![4, 3]));
        let mut conv = LineageTable::new(1, 1);
        for i in 1..40 {
            for d in -1..=1 {
                conv.push_row(&[i, i + d]);
            }
        }
        tables.push((conv, vec![48], vec![48]));
        let mut scatter = LineageTable::new(1, 1);
        for i in 0..64 {
            scatter.push_row(&[i, (i * 37 + 11) % 64]);
        }
        tables.push((scatter, vec![64], vec![64]));
        let mut diag = LineageTable::new(1, 2);
        for i in 0..10 {
            diag.push_row(&[i, i, i]);
        }
        tables.push((diag, vec![10], vec![10, 10]));
        for (t, out_shape, in_shape) in &tables {
            for orientation in [Orientation::Backward, Orientation::Forward] {
                let ablation = compress_opts(
                    t,
                    out_shape,
                    in_shape,
                    orientation,
                    CompressOptions {
                        fast: false,
                        ..CompressOptions::default()
                    },
                );
                for threshold in [usize::MAX, 1] {
                    let fast = compress_opts(
                        t,
                        out_shape,
                        in_shape,
                        orientation,
                        CompressOptions {
                            fast: true,
                            parallel: true,
                            parallel_threshold: threshold,
                        },
                    );
                    assert_eq!(fast, ablation, "threshold {threshold}, {orientation:?}");
                }
            }
        }
    }

    #[test]
    fn batch_parallel_opts_honors_ablation() {
        let mut t = LineageTable::new(1, 1);
        for i in 0..30 {
            t.push_row(&[i, i]);
        }
        let shape = [30usize];
        let jobs: Vec<CompressJob<'_>> = vec![(&t, &shape[..], &shape[..]); 3];
        let fast = compress_batch_parallel(&jobs, Orientation::Backward);
        let slow = compress_batch_parallel_opts(
            &jobs,
            Orientation::Backward,
            CompressOptions {
                fast: false,
                ..CompressOptions::default()
            },
        );
        assert_eq!(fast, slow);
    }

    #[test]
    fn both_orientations_agree() {
        let mut t = LineageTable::new(2, 1);
        for i in 0..5 {
            for j in 0..3 {
                t.push_row(&[i, j, i * 3 + j]);
            }
        }
        let (b, f) = compress_both(&t, &[5, 3], &[15]);
        assert_eq!(
            b.decompress().unwrap().row_set(),
            f.decompress().unwrap().row_set()
        );
        assert_eq!(b.decompress().unwrap().row_set(), t.normalized().row_set());
    }
}
