//! CLI subcommand implementations. Each returns the text to print so the
//! test suite can drive commands in-process.

use crate::csv;
use crate::opts::{parse_array_spec, parse_cells, Opts};
use dslog::api::{Dslog, TableCapture};
use dslog::provrc;
use dslog::storage::format as provrc_format;
use dslog::table::Orientation;
use dslog_baselines::all_formats;
use std::fmt::Write as _;

/// `dslog help`
pub fn help() -> String {
    "\
dslog — fine-grained array lineage storage, compression, and querying

USAGE:
  dslog ingest    --db DIR --in NAME:3x2 --out NAME:3 --csv FILE [--op NAME] [--gzip]
  dslog stats     --db DIR [--lazy]
  dslog query     --db DIR --path B,A --cells \"1;2;0\" [--no-merge] [--scan] [--stats] [--lazy]
  dslog export    --db DIR --edge IN,OUT [--csv FILE]
  dslog db verify DIR
  dslog compress  --csv FILE --out-arity N [--no-fast]
  dslog help

A database is a directory of ProvRC-compressed lineage tables plus a
catalog. CSV relations have one row per lineage pair: output-cell indices
first, then input-cell indices (Figure 1B of the DSLog paper).

Query cells are `;`-separated, each a `,`-separated index tuple of the
first array on --path. The answer lists interval boxes over the last
array's axes.

Saves are atomic (temp-file + rename, catalog-last commit) and table
files are crc32-checksummed. `db verify` walks a database and exits
non-zero on any damage. `--lazy` opens in O(catalog), loading and
verifying each edge table on first use.

`compress` reports per-format sizes plus ProvRC throughput (rows/s and
raw MB/s); `--no-fast` swaps the columnar fast pipeline for the
row-of-structs ablation (bit-identical output, for benchmarking).
"
    .to_string()
}

fn open_db(opts: &Opts) -> Result<Dslog, String> {
    let dir = opts.required("db")?;
    let result = if opts.switch("lazy") {
        Dslog::open_lazy(dir)
    } else {
        Dslog::open(dir)
    };
    result.map_err(|e| format!("open {dir}: {e}"))
}

/// `dslog ingest`: add one CSV relation as an edge, creating or extending
/// the database directory.
pub fn ingest(args: &[String]) -> Result<String, String> {
    let opts = Opts::parse(args)?;
    let db_dir = opts.required("db")?;
    let (in_name, in_shape) = parse_array_spec(opts.required("in")?)?;
    let (out_name, out_shape) = parse_array_spec(opts.required("out")?)?;
    let csv_path = opts.required("csv")?;
    let gzip = opts.switch("gzip");

    let text = std::fs::read_to_string(csv_path).map_err(|e| format!("read {csv_path}: {e}"))?;
    let table = csv::parse(&text, out_shape.len(), in_shape.len())?;
    let n_rows = table.n_rows();
    let raw_bytes = table.nbytes();

    // Extend an existing database or start a fresh one.
    let mut db = match Dslog::open(db_dir) {
        Ok(db) => db,
        Err(dslog::DslogError::Io(_)) => Dslog::new(),
        Err(e) => return Err(format!("open {db_dir}: {e}")),
    };
    db.define_array(&in_name, &in_shape)
        .map_err(|e| e.to_string())?;
    db.define_array(&out_name, &out_shape)
        .map_err(|e| e.to_string())?;
    db.add_lineage(&in_name, &out_name, &TableCapture::new(table))
        .map_err(|e| e.to_string())?;
    db.save(db_dir, gzip).map_err(|e| e.to_string())?;

    let stored = db
        .storage()
        .stored_table(&in_name, &out_name, Orientation::Backward)
        .map_err(|e| e.to_string())?;
    let compressed_bytes = if gzip {
        provrc_format::serialize_gzip(&stored).len()
    } else {
        provrc_format::serialize(&stored).len()
    };
    Ok(format!(
        "ingested {n_rows} lineage rows as edge {in_name} -> {out_name}\n\
         compressed {} rows, {raw_bytes} B raw -> {compressed_bytes} B on disk ({:.3}%)\n",
        stored.n_rows(),
        100.0 * compressed_bytes as f64 / raw_bytes.max(1) as f64
    ))
}

/// `dslog stats`: what the database holds.
pub fn stats(args: &[String]) -> Result<String, String> {
    let opts = Opts::parse(args)?;
    let db = open_db(&opts)?;
    let storage = db.storage();
    let mut out = String::new();
    let names = storage.array_names();
    writeln!(out, "{} array(s):", names.len()).unwrap();
    for name in &names {
        let meta = storage.array(name).map_err(|e| e.to_string())?;
        writeln!(out, "  {name}  shape {:?}", meta.shape).unwrap();
    }
    writeln!(
        out,
        "{} edge(s), {} B of compressed lineage on disk",
        storage.n_edges(),
        storage.storage_bytes()
    )
    .unwrap();
    Ok(out)
}

/// `dslog query`: forward/backward lineage along a path.
pub fn query(args: &[String]) -> Result<String, String> {
    let opts = Opts::parse(args)?;
    let db = open_db(&opts)?;
    let path_spec = opts.required("path")?;
    let path: Vec<&str> = path_spec.split(',').map(str::trim).collect();
    let cells = parse_cells(opts.required("cells")?)?;
    if cells.is_empty() {
        return Err("no query cells given".to_string());
    }

    let result = db
        .prov_query_opts(
            &path,
            &cells,
            dslog::query::QueryOptions {
                merge: !opts.switch("no-merge"),
                use_index: !opts.switch("scan"),
                ..dslog::query::QueryOptions::default()
            },
        )
        .map_err(|e| e.to_string())?;

    let mut out = String::new();
    writeln!(
        out,
        "{} box(es), {} cell(s), {} hop(s):",
        result.cells.n_boxes(),
        result.cells.volume(),
        result.hops
    )
    .unwrap();
    if opts.switch("stats") {
        for (i, h) in result.stats.hops.iter().enumerate() {
            writeln!(
                out,
                "  hop {i}: {} probed, {} matched, {} boxes, {:.2?} ({}, {} thread(s))",
                h.rows_probed,
                h.rows_matched,
                h.boxes_emitted,
                h.wall,
                if h.used_index { "indexed" } else { "scan" },
                h.threads
            )
            .unwrap();
        }
    }
    for b in result.cells.boxes() {
        let dims: Vec<String> = b
            .iter()
            .map(|ivl| {
                if ivl.is_point() {
                    format!("{}", ivl.lo)
                } else {
                    format!("[{}, {}]", ivl.lo, ivl.hi)
                }
            })
            .collect();
        writeln!(out, "  ({})", dims.join(", ")).unwrap();
    }
    Ok(out)
}

/// `dslog export`: decompress one edge back to CSV (stdout or --csv FILE).
pub fn export(args: &[String]) -> Result<String, String> {
    let opts = Opts::parse(args)?;
    let db = open_db(&opts)?;
    let edge_spec = opts.required("edge")?;
    let (in_name, out_name) = edge_spec
        .split_once(',')
        .ok_or_else(|| format!("--edge `{edge_spec}` must be IN,OUT"))?;
    let stored = db
        .storage()
        .stored_table(in_name.trim(), out_name.trim(), Orientation::Backward)
        .map_err(|e| e.to_string())?;
    let table = stored.decompress().map_err(|e| e.to_string())?;
    let rendered = csv::render(&table);
    if let Some(path) = opts.optional("csv") {
        std::fs::write(path, &rendered).map_err(|e| format!("write {path}: {e}"))?;
        Ok(format!("wrote {} rows to {path}\n", table.n_rows()))
    } else {
        Ok(rendered)
    }
}

/// `dslog db <subcommand>`: database maintenance. Currently:
/// `dslog db verify <dir>` — walk the catalog, re-read every referenced
/// table file, and check byte length, crc32, structural decode, and
/// orientation agreement. Errors (non-zero exit) on any damage.
pub fn db(args: &[String]) -> Result<String, String> {
    let Some(sub) = args.first() else {
        return Err("usage: dslog db verify <dir>".to_string());
    };
    match sub.as_str() {
        "verify" => {
            let dir = args
                .get(1)
                .ok_or_else(|| "usage: dslog db verify <dir>".to_string())?;
            if args.len() > 2 {
                return Err("db verify takes exactly one directory".to_string());
            }
            let report = dslog::storage::persist::verify(std::path::Path::new(dir))
                .map_err(|e| format!("verify {dir}: {e}"))?;
            let mut out = String::new();
            writeln!(
                out,
                "database OK: {} array(s), {} edge(s), {} table file(s) verified \
                 (catalog v{}, {})",
                report.n_arrays,
                report.n_edges,
                report.files_verified,
                report.catalog_version,
                if report.gzip { "gzip" } else { "plain" }
            )
            .unwrap();
            for name in &report.stale_files {
                writeln!(
                    out,
                    "warning: stale file {name} (crashed-save debris; next save sweeps it)"
                )
                .unwrap();
            }
            Ok(out)
        }
        other => Err(format!("unknown db subcommand `{other}`; see `dslog help`")),
    }
}

/// `dslog compress`: compare every storage format on a CSV relation and
/// report ProvRC compression throughput. `--no-fast` selects the
/// row-of-structs ablation pipeline (bit-identical output, for
/// benchmarking the columnar pipeline against its reference).
pub fn compress(args: &[String]) -> Result<String, String> {
    let opts = Opts::parse(args)?;
    let csv_path = opts.required("csv")?;
    let out_arity = opts.required_usize("out-arity")?;
    let no_fast = opts.switch("no-fast");
    let text = std::fs::read_to_string(csv_path).map_err(|e| format!("read {csv_path}: {e}"))?;

    // Infer total arity from the first data row.
    let arity = text
        .lines()
        .map(str::trim)
        .find(|l| !l.is_empty() && !l.starts_with('#'))
        .ok_or("empty CSV")?
        .split(',')
        .count();
    if out_arity == 0 || out_arity >= arity {
        return Err(format!(
            "--out-arity {out_arity} impossible for {arity}-column rows"
        ));
    }
    let table = csv::parse(&text, out_arity, arity - out_arity)?;

    // Shapes for ProvRC: tight bounding extents of the observed indices.
    let mut extents = vec![1i64; arity];
    for row in table.rows() {
        for (e, &v) in extents.iter_mut().zip(row) {
            *e = (*e).max(v + 1);
        }
    }
    let out_shape: Vec<usize> = extents[..out_arity].iter().map(|&e| e as usize).collect();
    let in_shape: Vec<usize> = extents[out_arity..].iter().map(|&e| e as usize).collect();

    let raw_bytes = table.nbytes();
    let mut rows: Vec<(String, usize)> = all_formats()
        .iter()
        .map(|f| (f.name().to_string(), f.encode(&table).len()))
        .collect();
    let compress_opts = provrc::CompressOptions {
        fast: !no_fast,
        ..provrc::CompressOptions::default()
    };
    let start = std::time::Instant::now();
    let provrc_table = provrc::compress_opts(
        &table,
        &out_shape,
        &in_shape,
        Orientation::Backward,
        compress_opts,
    );
    let compress_secs = start.elapsed().as_secs_f64().max(1e-9);
    rows.push((
        "ProvRC".to_string(),
        provrc_format::serialize(&provrc_table).len(),
    ));
    rows.push((
        "ProvRC-GZip".to_string(),
        provrc_format::serialize_gzip(&provrc_table).len(),
    ));

    let mut out = String::new();
    writeln!(
        out,
        "{} rows, {} output + {} input attributes, {raw_bytes} B raw",
        table.n_rows(),
        out_arity,
        arity - out_arity
    )
    .unwrap();
    writeln!(
        out,
        "ProvRC ({} pipeline): {} -> {} rows in {:.3}ms ({:.3e} rows/s, {:.1} MB/s raw)\n",
        if no_fast { "ablation" } else { "fast" },
        table.n_rows(),
        provrc_table.n_rows(),
        compress_secs * 1e3,
        table.n_rows() as f64 / compress_secs,
        raw_bytes as f64 / 1_048_576.0 / compress_secs,
    )
    .unwrap();
    writeln!(out, "{:<14} {:>12} {:>10}", "format", "bytes", "% of raw").unwrap();
    for (name, bytes) in rows {
        writeln!(
            out,
            "{name:<14} {bytes:>12} {:>10.4}",
            100.0 * bytes as f64 / raw_bytes.max(1) as f64
        )
        .unwrap();
    }
    Ok(out)
}
