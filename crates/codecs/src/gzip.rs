//! Gzip-like container around [`crate::deflate`]: magic, payload, CRC-32 of
//! the uncompressed data, and the uncompressed size.
//!
//! Used for the paper's `Parquet-GZip` and `ProvRC-GZip` variants. The
//! framing is DSLog-private (no interop requirement); the 12-byte overhead is
//! comparable to a real gzip member header+trailer.

use crate::crc32::crc32;
use crate::deflate;
use crate::varint::{read_uvarint, write_uvarint};
use crate::{CodecError, Result};

const MAGIC: &[u8; 4] = b"DSGZ";

/// Compress `data` into a checksummed container.
pub fn compress(data: &[u8]) -> Vec<u8> {
    let body = deflate::compress(data);
    let mut out = Vec::with_capacity(body.len() + 16);
    out.extend_from_slice(MAGIC);
    out.extend_from_slice(&crc32(data).to_le_bytes());
    write_uvarint(&mut out, data.len() as u64);
    out.extend_from_slice(&body);
    out
}

/// The uncompressed size a container claims, without decompressing it.
/// Lets callers that know the expected size (e.g. from a catalog record)
/// reject a mismatching container before paying for — or being bombed
/// by — the decompression itself.
pub fn declared_len(data: &[u8]) -> Result<u64> {
    if data.len() < 8 || &data[..4] != MAGIC {
        return Err(CodecError::InvalidFormat("bad gzip magic"));
    }
    let mut pos = 8;
    read_uvarint(data, &mut pos)
}

/// Decompress and verify a container produced by [`compress`].
pub fn decompress(data: &[u8]) -> Result<Vec<u8>> {
    if data.len() < 8 || &data[..4] != MAGIC {
        return Err(CodecError::InvalidFormat("bad gzip magic"));
    }
    let stored_crc = u32::from_le_bytes(data[4..8].try_into().unwrap());
    let mut pos = 8;
    let n = read_uvarint(data, &mut pos)? as usize;
    let out = deflate::decompress(&data[pos..])?;
    if out.len() != n {
        return Err(CodecError::InvalidFormat("gzip size mismatch"));
    }
    if crc32(&out) != stored_crc {
        return Err(CodecError::ChecksumMismatch);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let data = b"gzip container roundtrip test data, repeated: ".repeat(50);
        let comp = compress(&data);
        assert_eq!(decompress(&comp).unwrap(), data);
        assert!(comp.len() < data.len());
    }

    #[test]
    fn empty() {
        let comp = compress(b"");
        assert_eq!(decompress(&comp).unwrap(), Vec::<u8>::new());
    }

    #[test]
    fn corruption_detected() {
        let data = b"some payload that compresses".repeat(20);
        let mut comp = compress(&data);
        // Flip a bit in the deflate body.
        let idx = comp.len() - 3;
        comp[idx] ^= 0x40;
        assert!(decompress(&comp).is_err());
    }

    #[test]
    fn bad_magic_rejected() {
        let mut comp = compress(b"hello");
        comp[0] = b'X';
        assert_eq!(
            decompress(&comp),
            Err(CodecError::InvalidFormat("bad gzip magic"))
        );
    }
}
