//! Figure 7: compression latency as a function of input size, for the two
//! extreme lineage types — (A) one-to-one element-wise and (B) one-axis
//! aggregation (paper §VII.C.2).
//!
//! Latency covers the full path the paper measures: "read,
//! format-conversion, compression, and flush" — here, capture-table →
//! encoded bytes.
//!
//! Run: `cargo run -p dslog-bench --release --bin fig7 [--scale f]`

use dslog::provrc;
use dslog::storage::format as provrc_format;
use dslog::table::{LineageTable, Orientation};
use dslog_array::{apply, OpArgs};
use dslog_baselines::all_formats;
use dslog_bench::{cli_scale_seed, secs, timed, TextTable};
use dslog_workloads::pipelines::random_array;

fn elementwise_lineage(cells: usize, seed: u64) -> (LineageTable, Vec<usize>, Vec<usize>) {
    let a = random_array(&[cells], seed);
    let r = apply("negative", &[&a], &OpArgs::none());
    (
        r.lineage[0].clone(),
        r.output.shape().to_vec(),
        a.shape().to_vec(),
    )
}

fn aggregation_lineage(cells: usize, seed: u64) -> (LineageTable, Vec<usize>, Vec<usize>) {
    let side = (cells as f64).sqrt() as usize;
    let a = random_array(&[side.max(2), (cells / side.max(2)).max(2)], seed);
    let r = apply("sum", &[&a], &OpArgs::ints(&[1]));
    (
        r.lineage[0].clone(),
        r.output.shape().to_vec(),
        a.shape().to_vec(),
    )
}

fn bench_case(
    title: &str,
    gen: impl Fn(usize, u64) -> (LineageTable, Vec<usize>, Vec<usize>),
    sizes: &[usize],
    seed: u64,
) {
    println!("\n(Fig 7 {title}) compression latency vs input size");
    let mut header = vec!["cells".to_string()];
    let formats = all_formats();
    header.extend(formats.iter().map(|f| f.name().to_string()));
    header.push("ProvRC-GZip".to_string());
    let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
    let mut table = TextTable::new(&header_refs);

    for &cells in sizes {
        let (lineage, out_shape, in_shape) = gen(cells, seed);
        let mut row = vec![cells.to_string()];
        for f in &formats {
            let (_, t) = timed(|| f.encode(&lineage));
            row.push(secs(t));
        }
        let (_, t) = timed(|| {
            let c = provrc::compress(&lineage, &out_shape, &in_shape, Orientation::Backward);
            provrc_format::serialize_gzip(&c)
        });
        row.push(secs(t));
        table.row(&row);
    }
    println!("{}", table.render());
}

fn main() {
    let (scale, seed) = cli_scale_seed();
    println!("Figure 7 — compression latency (scale {scale}, seed {seed})");
    let sizes: Vec<usize> = [1_000usize, 10_000, 100_000, 1_000_000]
        .iter()
        .map(|&s| ((s as f64 * scale) as usize).max(100))
        .collect();
    bench_case("A: element-wise", elementwise_lineage, &sizes, seed);
    bench_case("B: aggregation", aggregation_lineage, &sizes, seed);
}
