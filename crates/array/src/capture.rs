//! Lineage capture plumbing: operation results and the lineage builder.
//!
//! This is the Rust analogue of the paper's `tracked_cell` capture
//! (§VII.A.1): operations record, for every output cell, the input cells
//! that contributed to it, yielding one [`LineageTable`] per input array.

use crate::array::Array;
use dslog::table::LineageTable;

/// The result of executing one tracked operation.
#[derive(Debug, Clone)]
pub struct OpResult {
    /// The output array.
    pub output: Array,
    /// One lineage relation per input array, in input order.
    pub lineage: Vec<LineageTable>,
}

impl OpResult {
    /// Lineage for input `i`.
    pub fn lineage_for(&self, i: usize) -> &LineageTable {
        &self.lineage[i]
    }
}

/// Incrementally builds the lineage relations of an operation with
/// `n_inputs` input arrays.
#[derive(Debug)]
pub struct LineageBuilder {
    tables: Vec<LineageTable>,
    out_buf: Vec<i64>,
}

impl LineageBuilder {
    /// A builder for an output with `out_arity` axes and the given input
    /// arities.
    pub fn new(out_arity: usize, in_arities: &[usize]) -> Self {
        Self {
            tables: in_arities
                .iter()
                .map(|&ia| LineageTable::new(out_arity, ia))
                .collect(),
            out_buf: Vec::with_capacity(out_arity),
        }
    }

    /// Record that output cell `out_idx` received a contribution from
    /// `in_idx` of input `input`.
    #[inline]
    pub fn add(&mut self, input: usize, out_idx: &[usize], in_idx: &[usize]) {
        self.out_buf.clear();
        self.out_buf.extend(out_idx.iter().map(|&v| v as i64));
        let in_cell: Vec<i64> = in_idx.iter().map(|&v| v as i64).collect();
        self.tables[input].push_pair(&self.out_buf, &in_cell);
    }

    /// Record a contribution with pre-converted `i64` coordinates.
    #[inline]
    pub fn add_i64(&mut self, input: usize, out_idx: &[i64], in_idx: &[i64]) {
        self.tables[input].push_pair(out_idx, in_idx);
    }

    /// Finish: normalize all tables and pair them with the output array.
    pub fn finish(mut self, output: Array) -> OpResult {
        for t in &mut self.tables {
            t.normalize();
        }
        OpResult {
            output,
            lineage: self.tables,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_collects_per_input() {
        let mut b = LineageBuilder::new(1, &[1, 2]);
        b.add(0, &[0], &[0]);
        b.add(1, &[0], &[1, 1]);
        b.add(1, &[0], &[0, 1]);
        b.add(1, &[0], &[0, 1]); // duplicate, removed by normalize
        let r = b.finish(Array::zeros(&[1]));
        assert_eq!(r.lineage_for(0).n_rows(), 1);
        assert_eq!(r.lineage_for(1).n_rows(), 2);
        assert_eq!(r.lineage_for(1).row(0), &[0, 0, 1]);
        assert_eq!(r.lineage_for(1).row(1), &[0, 1, 1]);
    }
}
