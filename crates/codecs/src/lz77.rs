//! Hash-chain LZ77 matcher with a 32 KiB sliding window.
//!
//! This mirrors the matcher structure of zlib's deflate: a 3-byte rolling
//! hash indexes chain heads, chains link earlier occurrences, and a bounded
//! chain walk finds the longest match within the window. Output is a token
//! stream of literals and `(length, distance)` matches consumed by
//! [`crate::deflate`].

/// Sliding window size (matches DEFLATE).
pub const WINDOW_SIZE: usize = 32 * 1024;
/// Minimum useful match length.
pub const MIN_MATCH: usize = 3;
/// Maximum match length (matches DEFLATE).
pub const MAX_MATCH: usize = 258;
/// How many chain entries to inspect per position (speed/ratio knob).
const MAX_CHAIN: usize = 64;

const HASH_BITS: u32 = 15;
const HASH_SIZE: usize = 1 << HASH_BITS;

/// One LZ77 token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Token {
    /// A single literal byte.
    Literal(u8),
    /// A back-reference: copy `len` bytes starting `dist` bytes back.
    Match {
        /// Match length in `[MIN_MATCH, MAX_MATCH]`.
        len: u32,
        /// Distance in `[1, WINDOW_SIZE]`.
        dist: u32,
    },
}

#[inline]
fn hash3(data: &[u8], pos: usize) -> usize {
    let v =
        u32::from(data[pos]) | (u32::from(data[pos + 1]) << 8) | (u32::from(data[pos + 2]) << 16);
    ((v.wrapping_mul(0x9E37_79B1)) >> (32 - HASH_BITS)) as usize
}

/// Tokenize `data` greedily.
pub fn tokenize(data: &[u8]) -> Vec<Token> {
    let n = data.len();
    let mut tokens = Vec::with_capacity(n / 3 + 16);
    if n < MIN_MATCH {
        tokens.extend(data.iter().map(|&b| Token::Literal(b)));
        return tokens;
    }

    // head[h] = most recent position with hash h (+1, 0 = none).
    let mut head = vec![0u32; HASH_SIZE];
    // prev[pos % WINDOW_SIZE] = previous position with the same hash (+1).
    let mut prev = vec![0u32; WINDOW_SIZE];

    let mut pos = 0usize;
    while pos < n {
        if pos + MIN_MATCH > n {
            tokens.push(Token::Literal(data[pos]));
            pos += 1;
            continue;
        }
        let h = hash3(data, pos);
        let mut best_len = 0usize;
        let mut best_dist = 0usize;
        let mut candidate = head[h] as usize;
        let mut chain = 0;
        let max_len = MAX_MATCH.min(n - pos);
        while candidate > 0 && chain < MAX_CHAIN {
            let cand_pos = candidate - 1;
            if pos - cand_pos > WINDOW_SIZE {
                break;
            }
            // Quick check: candidate must beat best at position best_len.
            if best_len == 0 || data[cand_pos + best_len] == data[pos + best_len] {
                let mut len = 0usize;
                while len < max_len && data[cand_pos + len] == data[pos + len] {
                    len += 1;
                }
                if len > best_len {
                    best_len = len;
                    best_dist = pos - cand_pos;
                    if len >= max_len {
                        break;
                    }
                }
            }
            candidate = prev[cand_pos % WINDOW_SIZE] as usize;
            chain += 1;
        }

        if best_len >= MIN_MATCH {
            tokens.push(Token::Match {
                len: best_len as u32,
                dist: best_dist as u32,
            });
            // Insert hash entries for all covered positions.
            let end = (pos + best_len).min(n - MIN_MATCH + 1);
            let mut p = pos;
            while p < end {
                let hh = hash3(data, p);
                prev[p % WINDOW_SIZE] = head[hh];
                head[hh] = (p + 1) as u32;
                p += 1;
            }
            pos += best_len;
        } else {
            prev[pos % WINDOW_SIZE] = head[h];
            head[h] = (pos + 1) as u32;
            tokens.push(Token::Literal(data[pos]));
            pos += 1;
        }
    }
    tokens
}

/// Reconstruct bytes from a trusted token stream (as produced by
/// [`tokenize`]).
///
/// # Panics
/// Panics if a match distance reaches before the start of the output; use
/// [`try_detokenize`] for tokens decoded from untrusted bytes.
pub fn detokenize(tokens: &[Token]) -> Vec<u8> {
    try_detokenize(tokens).expect("invalid match distance in trusted token stream")
}

/// Reconstruct bytes from a possibly-corrupt token stream, rejecting match
/// distances that reach before the start of the output.
pub fn try_detokenize(tokens: &[Token]) -> crate::Result<Vec<u8>> {
    let mut out = Vec::new();
    for &t in tokens {
        match t {
            Token::Literal(b) => out.push(b),
            Token::Match { len, dist } => {
                if dist as usize > out.len() || dist == 0 {
                    return Err(crate::CodecError::InvalidFormat(
                        "lz77 match distance out of range",
                    ));
                }
                let start = out.len() - dist as usize;
                for i in 0..len as usize {
                    let b = out[start + i];
                    out.push(b);
                }
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(data: &[u8]) {
        let tokens = tokenize(data);
        assert_eq!(detokenize(&tokens), data);
    }

    #[test]
    fn empty_and_tiny() {
        roundtrip(b"");
        roundtrip(b"a");
        roundtrip(b"ab");
        roundtrip(b"abc");
    }

    #[test]
    fn repeated_text_finds_matches() {
        let data = b"the quick brown fox jumps over the lazy dog. the quick brown fox!";
        let tokens = tokenize(data);
        assert!(
            tokens.iter().any(|t| matches!(t, Token::Match { .. })),
            "expected at least one match token"
        );
        assert_eq!(detokenize(&tokens), data);
    }

    #[test]
    fn overlapping_match_rle_style() {
        // "aaaa..." relies on overlapping copies (dist=1, len>1).
        let data = vec![b'a'; 1000];
        let tokens = tokenize(&data);
        assert!(
            tokens.len() < 20,
            "RLE-like input should produce few tokens"
        );
        assert_eq!(detokenize(&tokens), data);
    }

    #[test]
    fn long_random_roundtrip() {
        let data: Vec<u8> = (0..100_000u64)
            .map(|i| {
                (i.wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407)
                    >> 33) as u8
            })
            .collect();
        roundtrip(&data);
    }

    #[test]
    fn long_structured_roundtrip() {
        let mut data = Vec::new();
        for i in 0..5000u32 {
            data.extend_from_slice(&(i % 100).to_le_bytes());
        }
        let tokens = tokenize(&data);
        let matched: usize = tokens
            .iter()
            .map(|t| match t {
                Token::Match { len, .. } => *len as usize,
                _ => 0,
            })
            .sum();
        assert!(
            matched > data.len() / 2,
            "structured data should mostly match"
        );
        assert_eq!(detokenize(&tokens), data);
    }
}
