//! Relational representations of lineage.
//!
//! * [`lineage`] — the uncompressed relation `R(b1..bl, a1..am)` of §III.B.
//! * [`boxes`] — tables of interval boxes (queries `Q'` and θ-join results).
//! * [`compressed`] — the ProvRC-compressed relation of §IV.

pub mod boxes;
pub mod compressed;
pub mod lineage;

pub use boxes::BoxTable;
pub use compressed::{Cell, CompressedTable, Orientation};
pub use lineage::LineageTable;
