//! Relational data pre-processing lineage (paper Table VIII B / Fig. 8 B).
//!
//! Builds the paper's five-step relational workflow over synthetic
//! IMDB-like tables — inner join on `tconst` → drop NaN columns → add two
//! columns → one-hot encode `genres` → add a constant — representing each
//! table as a 2-D array (rows × attributes). Then answers the questions a
//! data engineer actually asks: "which source rows fed this suspicious
//! output value?" and "what does this source cell touch downstream?".
//!
//! Run with: `cargo run --release --example relational_pipeline`

use dslog::api::Dslog;
use dslog::storage::format;
use dslog::table::Orientation;
use dslog_workloads::pipelines::relational_workflow;
use std::time::Instant;

fn main() {
    let n_rows = 2_000; // paper uses the full IMDB tables; shape-free ratios
    let seed = 0x1_3D8;

    println!("building relational workflow (join->dropnan->add->onehot->addconst), {n_rows} rows");
    let t0 = Instant::now();
    let pipeline = relational_workflow(n_rows, seed);
    println!(
        "captured {} hops; main path {:?} in {:?}",
        pipeline.hops.len(),
        pipeline.main_path,
        t0.elapsed()
    );

    let mut db = Dslog::new();
    let t0 = Instant::now();
    pipeline.register_into(&mut db).unwrap();
    println!("ingest + ProvRC compression took {:?}", t0.elapsed());

    println!("\nper-step storage:");
    for hop in &pipeline.hops {
        let stored = db
            .storage()
            .stored_table(&hop.in_array, &hop.out_array, Orientation::Backward)
            .unwrap();
        println!(
            "  {:>8} -> {:<8} {:>8} rows -> {:>5} rows  ({:>9} B -> {:>6} B)",
            hop.in_array,
            hop.out_array,
            hop.lineage.n_rows(),
            stored.n_rows(),
            hop.lineage.nbytes(),
            format::serialize(&stored).len(),
        );
    }

    // ------------------------------------------------------------------
    // Backward: a QA check flagged final[5, 1] (row 5, second column).
    // Which cells of the joined source tables does it derive from?
    // ------------------------------------------------------------------
    let back_path: Vec<&str> = pipeline
        .main_path
        .iter()
        .rev()
        .map(String::as_str)
        .collect();
    let t0 = Instant::now();
    let back = db.prov_query(&back_path, &[vec![5, 1]]).unwrap();
    println!(
        "\nbackward query final[5,1] -> basics: {} cell(s) in {} box(es), {:?}",
        back.cells.volume(),
        back.cells.n_boxes(),
        t0.elapsed()
    );
    for b in back.cells.boxes().take(5) {
        println!(
            "  basics rows [{},{}], cols [{},{}]",
            b[0].lo, b[0].hi, b[1].lo, b[1].hi
        );
    }

    // The join has two parents; the episode side is queryable too.
    let episode_path = ["final", "onehot", "summed", "filtered", "joined", "episode"];
    let ep = db.prov_query(&episode_path, &[vec![5, 1]]).unwrap();
    println!(
        "backward query final[5,1] -> episode: {} cell(s) in {} box(es)",
        ep.cells.volume(),
        ep.cells.n_boxes()
    );

    // ------------------------------------------------------------------
    // Forward: GDPR-style impact analysis — everything row 0 of basics
    // touches in the final output.
    // ------------------------------------------------------------------
    let fwd_path: Vec<&str> = pipeline.main_path.iter().map(String::as_str).collect();
    let n_cols = pipeline.shape_of("basics")[1] as i64;
    let row0: Vec<Vec<i64>> = (0..n_cols).map(|c| vec![0, c]).collect();
    let t0 = Instant::now();
    let fwd = db.prov_query(&fwd_path, &row0).unwrap();
    println!(
        "\nforward query basics[0, *] -> final: {} cell(s) in {} box(es), {:?} ({} hops)",
        fwd.cells.volume(),
        fwd.cells.n_boxes(),
        t0.elapsed(),
        fwd.hops
    );

    println!("\nok: relational workflow traced forward and backward");
}
