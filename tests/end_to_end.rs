//! End-to-end integration tests: real operations from the array engine are
//! captured, ingested through the public `Dslog` API, compressed with
//! ProvRC, and queried in situ — every answer is checked against the
//! brute-force reference over the *uncompressed* relation.

use dslog::api::{Dslog, TableCapture};
use dslog::query::reference::{self, Direction};
use dslog::query::QueryOptions;
use dslog::storage::Materialize;
use dslog::table::{LineageTable, Orientation};
use dslog_array::{apply, Array, OpArgs};
use dslog_workloads::pipelines::random_array;
use std::collections::BTreeSet;

/// Register one op's lineage (input 0) under the array names `in`/`out`.
fn register(db: &mut Dslog, op: &str, a: &Array, args: &OpArgs) -> (LineageTable, Vec<usize>) {
    let r = apply(op, &[a], args);
    db.define_array("in", a.shape()).unwrap();
    db.define_array("out", r.output.shape()).unwrap();
    db.register_operation(
        op,
        &["in"],
        &["out"],
        vec![Box::new(TableCapture::new(r.lineage[0].clone()))],
        &[],
        false,
    )
    .unwrap();
    (r.lineage[0].clone(), r.output.shape().to_vec())
}

/// Every backward query over every output cell must match the reference.
fn check_all_backward(db: &Dslog, lineage: &LineageTable, out_shape: &[usize]) {
    for cell in enumerate_cells(out_shape) {
        let got = db
            .prov_query(&["out", "in"], std::slice::from_ref(&cell))
            .unwrap();
        let want = reference::step(
            &[cell.clone()].into_iter().collect(),
            lineage,
            Direction::Backward,
        );
        assert_eq!(got.cells.cell_set(), want, "backward from {cell:?}");
    }
}

fn enumerate_cells(shape: &[usize]) -> Vec<Vec<i64>> {
    let mut cells = vec![Vec::new()];
    for &d in shape {
        let mut next = Vec::with_capacity(cells.len() * d);
        for c in cells {
            for v in 0..d as i64 {
                let mut c2 = c.clone();
                c2.push(v);
                next.push(c2);
            }
        }
        cells = next;
    }
    cells
}

#[test]
fn elementwise_negative_roundtrip() {
    let a = random_array(&[8, 6], 1);
    let mut db = Dslog::new();
    let (lineage, out_shape) = register(&mut db, "negative", &a, &OpArgs::none());
    check_all_backward(&db, &lineage, &out_shape);
}

#[test]
fn axis_aggregation_roundtrip() {
    let a = random_array(&[7, 5], 2);
    let mut db = Dslog::new();
    let (lineage, out_shape) = register(&mut db, "sum", &a, &OpArgs::ints(&[1]));
    check_all_backward(&db, &lineage, &out_shape);
}

#[test]
fn sort_worst_case_roundtrip() {
    // Sort has permutation lineage — ProvRC barely compresses it, but the
    // query path must stay exact.
    let a = random_array(&[40], 3);
    let mut db = Dslog::new();
    let (lineage, out_shape) = register(&mut db, "sort", &a, &OpArgs::none());
    check_all_backward(&db, &lineage, &out_shape);
}

#[test]
fn tile_repetition_roundtrip_forward() {
    let a = random_array(&[12], 4);
    let mut db = Dslog::new();
    let (lineage, _) = register(&mut db, "tile", &a, &OpArgs::ints(&[3]));
    // Forward from every input cell.
    for v in 0..12i64 {
        let got = db.prov_query(&["in", "out"], &[vec![v]]).unwrap();
        let want = reference::step(
            &[vec![v]].into_iter().collect(),
            &lineage,
            Direction::Forward,
        );
        assert_eq!(got.cells.cell_set(), want, "forward from [{v}]");
    }
}

#[test]
fn multi_input_matmul_both_sides() {
    // C = A·B: lineage to each input is stored as a separate edge.
    let a = random_array(&[4, 3], 5);
    let b = random_array(&[3, 5], 6);
    let r = apply("matmul", &[&a, &b], &OpArgs::none());
    let mut db = Dslog::new();
    db.define_array("A", a.shape()).unwrap();
    db.define_array("B", b.shape()).unwrap();
    db.define_array("C", r.output.shape()).unwrap();
    db.register_operation(
        "matmul",
        &["A", "B"],
        &["C"],
        vec![
            Box::new(TableCapture::new(r.lineage[0].clone())),
            Box::new(TableCapture::new(r.lineage[1].clone())),
        ],
        &[],
        false,
    )
    .unwrap();

    // C[i,j] depends on row i of A and column j of B.
    let got_a = db.prov_query(&["C", "A"], &[vec![2, 4]]).unwrap();
    let want_a: BTreeSet<Vec<i64>> = (0..3).map(|k| vec![2, k]).collect();
    assert_eq!(got_a.cells.cell_set(), want_a);

    let got_b = db.prov_query(&["C", "B"], &[vec![2, 4]]).unwrap();
    let want_b: BTreeSet<Vec<i64>> = (0..3).map(|k| vec![k, 4]).collect();
    assert_eq!(got_b.cells.cell_set(), want_b);

    // Forward: A[1, 0] influences the whole row 1 of C.
    let fwd = db.prov_query(&["A", "C"], &[vec![1, 0]]).unwrap();
    let want_fwd: BTreeSet<Vec<i64>> = (0..5).map(|j| vec![1, j]).collect();
    assert_eq!(fwd.cells.cell_set(), want_fwd);
}

#[test]
fn materialization_policies_agree() {
    // The same queries answered from backward-only, forward-only, and
    // both-orientations storage must be identical (§IV.C).
    let a = random_array(&[9, 4], 7);
    let r = apply("cumsum", &[&a], &OpArgs::none());
    let mut answers = Vec::new();
    for policy in [
        Materialize::Backward,
        Materialize::Forward,
        Materialize::Both,
    ] {
        let mut db = Dslog::new();
        db.set_materialize(policy);
        db.define_array("in", a.shape()).unwrap();
        db.define_array("out", r.output.shape()).unwrap();
        db.register_operation(
            "cumsum",
            &["in"],
            &["out"],
            vec![Box::new(TableCapture::new(r.lineage[0].clone()))],
            &[],
            false,
        )
        .unwrap();
        // cumsum without an axis flattens: out is 1-D over 36 cells.
        let back = db.prov_query(&["out", "in"], &[vec![11]]).unwrap();
        let fwd = db.prov_query(&["in", "out"], &[vec![2, 3]]).unwrap();
        answers.push((back.cells.cell_set(), fwd.cells.cell_set()));
    }
    assert_eq!(answers[0], answers[1]);
    assert_eq!(answers[1], answers[2]);
}

#[test]
fn merge_ablation_preserves_answers() {
    // DSLog-NoMerge must return the same *set* of cells, just in more boxes.
    let a = random_array(&[64], 8);
    let r = apply("gradient", &[&a], &OpArgs::none());
    let mut db = Dslog::new();
    db.define_array("in", a.shape()).unwrap();
    db.define_array("out", r.output.shape()).unwrap();
    db.add_lineage("in", "out", &TableCapture::new(r.lineage[0].clone()))
        .unwrap();

    let q: Vec<Vec<i64>> = (5..25).map(|v| vec![v]).collect();
    let merged = db
        .prov_query_opts(
            &["out", "in"],
            &q,
            QueryOptions {
                merge: true,
                ..QueryOptions::default()
            },
        )
        .unwrap();
    let unmerged = db
        .prov_query_opts(
            &["out", "in"],
            &q,
            QueryOptions {
                merge: false,
                ..QueryOptions::default()
            },
        )
        .unwrap();
    assert_eq!(merged.cells.cell_set(), unmerged.cells.cell_set());
    assert!(merged.cells.n_boxes() <= unmerged.cells.n_boxes());
}

#[test]
fn stored_tables_decompress_losslessly() {
    // The compressed table stored for each op must decompress to exactly
    // the captured relation — spanning the whole ingest path.
    for (op, shape, args) in [
        ("negative", vec![10usize, 3], OpArgs::none()),
        ("sum", vec![6, 6], OpArgs::ints(&[0])),
        ("transpose", vec![5, 7], OpArgs::none()),
        ("sort", vec![30], OpArgs::none()),
        ("flip", vec![16], OpArgs::none()),
    ] {
        let a = random_array(&shape, 11);
        let r = apply(op, &[&a], &args);
        let mut db = Dslog::new();
        db.define_array("in", a.shape()).unwrap();
        db.define_array("out", r.output.shape()).unwrap();
        db.add_lineage("in", "out", &TableCapture::new(r.lineage[0].clone()))
            .unwrap();
        let stored = db
            .storage()
            .stored_table("in", "out", Orientation::Backward)
            .unwrap();
        assert_eq!(
            stored.decompress().unwrap().row_set(),
            r.lineage[0].normalized().row_set(),
            "op {op}"
        );
    }
}

#[test]
fn serialization_roundtrips_through_disk_format() {
    use dslog::storage::format;
    let a = random_array(&[25, 4], 13);
    for op in ["negative", "cumsum", "sort", "tril"] {
        let r = apply(op, &[&a], &OpArgs::none());
        let c = dslog::provrc::compress(
            &r.lineage[0],
            r.output.shape(),
            a.shape(),
            Orientation::Backward,
        );
        let bytes = format::serialize(&c);
        let back = format::deserialize(&bytes).unwrap();
        assert_eq!(back, c, "plain roundtrip for {op}");
        let gz = format::serialize_gzip(&c);
        let back_gz = format::deserialize_gzip(&gz).unwrap();
        assert_eq!(back_gz, c, "gzip roundtrip for {op}");
    }
}

#[test]
fn queries_after_reuse_hit_match_fresh_capture() {
    // A gen_sig-reused edge must answer queries exactly like the capture
    // it replaced would have. `negative` is elementwise, so its lineage
    // generalizes over shapes (unlike e.g. cumsum's triangular pattern,
    // which the predictor correctly rejects).
    let mut db = Dslog::new();
    for (run, n) in [6usize, 9, 14].iter().enumerate() {
        let a = random_array(&[*n], 17 + run as u64);
        let r = apply("negative", &[&a], &OpArgs::none());
        let in_name = format!("x{run}");
        let out_name = format!("y{run}");
        db.define_array(&in_name, a.shape()).unwrap();
        db.define_array(&out_name, r.output.shape()).unwrap();
        db.register_operation(
            "negative",
            &[&in_name],
            &[&out_name],
            vec![Box::new(TableCapture::new(r.lineage[0].clone()))],
            &[],
            true,
        )
        .unwrap();
        // Whether captured or reused, answers must match the reference.
        for v in 0..*n as i64 {
            let got = db.prov_query(&[&out_name, &in_name], &[vec![v]]).unwrap();
            let want = reference::step(
                &[vec![v]].into_iter().collect(),
                &r.lineage[0],
                Direction::Backward,
            );
            assert_eq!(got.cells.cell_set(), want, "run {run}, cell {v}");
        }
    }
    assert!(db.reuse_stats().gen_hits >= 1, "third call should reuse");
}
