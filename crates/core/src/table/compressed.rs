//! The ProvRC-compressed lineage relation (paper §IV).
//!
//! A compressed table keeps one side of the relation **absolute** (the
//! *primary* side — output attributes for the backward orientation stored by
//! default, input attributes for the forward orientation of Table III) and
//! allows the other side (*secondary*) to be either absolute intervals or
//! **relative** intervals anchored to a primary attribute.
//!
//! Additionally, for lineage reuse (§VI.B), an absolute interval that spans
//! the full extent of its attribute may be replaced by the *symbolic* cell
//! [`Cell::Sym`]; such a table is *generalized* and must be instantiated with
//! concrete shapes before queries.

use crate::error::{DslogError, Result};
use crate::interval::Interval;
use crate::table::lineage::LineageTable;

/// Which side of the relation is kept absolute.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Orientation {
    /// Output attributes absolute; input attributes may be relative.
    /// This is the version materialized for backward queries (paper default).
    Backward,
    /// Input attributes absolute; output attributes may be relative
    /// (paper Table III), used for forward queries.
    Forward,
}

impl Orientation {
    /// The opposite orientation.
    pub fn flip(self) -> Orientation {
        match self {
            Orientation::Backward => Orientation::Forward,
            Orientation::Forward => Orientation::Backward,
        }
    }
}

/// One attribute's value inside a compressed row.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Cell {
    /// An absolute interval of indices.
    Abs(Interval),
    /// A relative interval: the value set is `primary[anchor] + delta`
    /// (all-to-all in the relative space, §V.B.1).
    Rel {
        /// Index of the primary attribute this cell is anchored to.
        anchor: u8,
        /// Delta interval (`value − anchor`).
        delta: Interval,
    },
    /// Symbolic full extent `[0, D_attr − 1]` of attribute `attr`
    /// (index reshaping, §VI.B / Fig. 6).
    Sym {
        /// Index of the attribute (in primary-then-secondary order) whose
        /// dimension defines this interval.
        attr: u8,
    },
}

impl Cell {
    /// Shorthand absolute point.
    pub fn point(v: i64) -> Cell {
        Cell::Abs(Interval::point(v))
    }

    /// Shorthand absolute interval.
    pub fn abs(lo: i64, hi: i64) -> Cell {
        Cell::Abs(Interval::new(lo, hi))
    }

    /// Whether this cell is symbolic.
    pub fn is_sym(&self) -> bool {
        matches!(self, Cell::Sym { .. })
    }
}

/// A ProvRC-compressed lineage relation.
///
/// Attribute order within a row is primary attributes first, then secondary
/// attributes; `attr` indices in [`Cell::Rel`]/[`Cell::Sym`] use this order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompressedTable {
    orientation: Orientation,
    primary_arity: usize,
    secondary_arity: usize,
    /// Extent (dimension size) of each attribute, primary-then-secondary
    /// order. Needed for reshaping and bounds reasoning.
    extents: Vec<i64>,
    /// Flat row-major cells; row length is `primary_arity + secondary_arity`.
    cells: Vec<Cell>,
}

impl CompressedTable {
    /// Create an empty compressed table.
    pub fn new(
        orientation: Orientation,
        primary_arity: usize,
        secondary_arity: usize,
        extents: Vec<i64>,
    ) -> Self {
        assert!(primary_arity > 0 && secondary_arity > 0);
        assert_eq!(extents.len(), primary_arity + secondary_arity);
        Self {
            orientation,
            primary_arity,
            secondary_arity,
            extents,
            cells: Vec::new(),
        }
    }

    /// The stored orientation.
    pub fn orientation(&self) -> Orientation {
        self.orientation
    }

    /// Arity of the absolute (query-side) attributes.
    pub fn primary_arity(&self) -> usize {
        self.primary_arity
    }

    /// Arity of the possibly-relative attributes.
    pub fn secondary_arity(&self) -> usize {
        self.secondary_arity
    }

    /// Total attribute count.
    pub fn arity(&self) -> usize {
        self.primary_arity + self.secondary_arity
    }

    /// Attribute extents (primary-then-secondary).
    pub fn extents(&self) -> &[i64] {
        &self.extents
    }

    /// Mutable access for reshaping.
    pub(crate) fn extents_mut(&mut self) -> &mut Vec<i64> {
        &mut self.extents
    }

    /// Number of compressed rows.
    pub fn n_rows(&self) -> usize {
        self.cells.len() / self.arity()
    }

    /// Whether the table has no rows.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// Append a row of cells (primary attributes first).
    pub fn push_row(&mut self, row: &[Cell]) {
        debug_assert_eq!(row.len(), self.arity());
        self.cells.extend_from_slice(row);
    }

    /// Row `i` as a slice of cells.
    pub fn row(&self, i: usize) -> &[Cell] {
        let a = self.arity();
        &self.cells[i * a..(i + 1) * a]
    }

    /// Mutable row access (used by reshaping).
    pub(crate) fn row_mut(&mut self, i: usize) -> &mut [Cell] {
        let a = self.arity();
        &mut self.cells[i * a..(i + 1) * a]
    }

    /// Iterate rows.
    pub fn rows(&self) -> impl Iterator<Item = &[Cell]> {
        self.cells.chunks_exact(self.arity())
    }

    /// Whether any cell is symbolic (table is generalized, not queryable).
    pub fn is_generalized(&self) -> bool {
        self.cells.iter().any(Cell::is_sym)
    }

    /// Resolve a cell to a concrete absolute interval given concrete values
    /// of the primary attributes. `Rel` cells need `primary_values`; `Sym`
    /// cells resolve against the stored extents.
    pub fn resolve_cell(&self, cell: &Cell, primary_values: &[i64]) -> Interval {
        match *cell {
            Cell::Abs(ivl) => ivl,
            Cell::Rel { anchor, delta } => {
                Interval::point(primary_values[anchor as usize]).minkowski_sum(&delta)
            }
            Cell::Sym { attr } => Interval::new(0, self.extents[attr as usize] - 1),
        }
    }

    /// Decompress to the uncompressed relation, in *output-attributes-first*
    /// attribute order regardless of orientation (so both orientations of
    /// the same lineage decompress to identical relations).
    pub fn decompress(&self) -> Result<LineageTable> {
        if self.is_generalized() {
            return Err(DslogError::NotInstantiated);
        }
        let (out_arity, in_arity) = match self.orientation {
            Orientation::Backward => (self.primary_arity, self.secondary_arity),
            Orientation::Forward => (self.secondary_arity, self.primary_arity),
        };
        let mut table = LineageTable::new(out_arity, in_arity);
        let pa = self.primary_arity;
        let sa = self.secondary_arity;
        let mut primary_vals = vec![0i64; pa];
        let mut row_buf = vec![0i64; pa + sa];
        for row in self.rows() {
            let (prim, sec) = row.split_at(pa);
            // Enumerate the Cartesian product of primary intervals.
            let prim_ivls: Vec<Interval> = prim
                .iter()
                .map(|c| match *c {
                    Cell::Abs(ivl) => ivl,
                    _ => unreachable!("primary cells are absolute in instantiated tables"),
                })
                .collect();
            for p in prim_ivls.iter().zip(primary_vals.iter_mut()) {
                *p.1 = p.0.lo;
            }
            'prim: loop {
                // Enumerate the secondary product for this primary point.
                let sec_ivls: Vec<Interval> = sec
                    .iter()
                    .map(|c| self.resolve_cell(c, &primary_vals))
                    .collect();
                let mut sec_vals: Vec<i64> = sec_ivls.iter().map(|ivl| ivl.lo).collect();
                'sec: loop {
                    // Emit row in out-attrs-first order.
                    match self.orientation {
                        Orientation::Backward => {
                            row_buf[..pa].copy_from_slice(&primary_vals);
                            row_buf[pa..].copy_from_slice(&sec_vals);
                        }
                        Orientation::Forward => {
                            row_buf[..sa].copy_from_slice(&sec_vals);
                            row_buf[sa..].copy_from_slice(&primary_vals);
                        }
                    }
                    table.push_row(&row_buf);
                    for k in (0..sa).rev() {
                        if sec_vals[k] < sec_ivls[k].hi {
                            sec_vals[k] += 1;
                            for (j, v) in sec_vals.iter_mut().enumerate().skip(k + 1) {
                                *v = sec_ivls[j].lo;
                            }
                            continue 'sec;
                        }
                    }
                    break;
                }
                for k in (0..pa).rev() {
                    if primary_vals[k] < prim_ivls[k].hi {
                        primary_vals[k] += 1;
                        for (j, v) in primary_vals.iter_mut().enumerate().skip(k + 1) {
                            *v = prim_ivls[j].lo;
                        }
                        continue 'prim;
                    }
                }
                break;
            }
        }
        table.normalize();
        Ok(table)
    }

    /// Approximate in-memory footprint in bytes (reporting only; the
    /// measured storage number comes from the serialized format).
    pub fn nbytes_in_memory(&self) -> usize {
        self.cells.len() * std::mem::size_of::<Cell>()
    }
}

impl std::fmt::Display for CompressedTable {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "CompressedTable({:?}, {} primary + {} secondary, {} rows)",
            self.orientation,
            self.primary_arity,
            self.secondary_arity,
            self.n_rows()
        )?;
        for row in self.rows() {
            let parts: Vec<String> = row
                .iter()
                .map(|c| match c {
                    Cell::Abs(ivl) => format!("{ivl}"),
                    Cell::Rel { anchor, delta } => {
                        if delta.is_point() {
                            format!("@{anchor}{:+}", delta.lo)
                        } else {
                            format!("@{anchor}+[{}, {}]", delta.lo, delta.hi)
                        }
                    }
                    Cell::Sym { attr } => format!("[0, D{attr})"),
                })
                .collect();
            writeln!(f, "  {}", parts.join(" | "))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Hand-built compressed form of the paper's running example (Table II,
    /// 1-based): single row `b1=[1,3], a1=Rel(b1, 0), a2=[1,2]`.
    fn paper_table_ii() -> CompressedTable {
        let mut t = CompressedTable::new(Orientation::Backward, 1, 2, vec![3, 3, 2]);
        t.push_row(&[
            Cell::abs(1, 3),
            Cell::Rel {
                anchor: 0,
                delta: Interval::point(0),
            },
            Cell::abs(1, 2),
        ]);
        t
    }

    #[test]
    fn decompress_paper_running_example() {
        let t = paper_table_ii();
        let full = t.decompress().unwrap();
        let expected = LineageTable::from_rows(
            1,
            2,
            &[
                &[1, 1, 1],
                &[1, 1, 2],
                &[2, 2, 1],
                &[2, 2, 2],
                &[3, 3, 1],
                &[3, 3, 2],
            ],
        );
        assert_eq!(full.row_set(), expected.row_set());
    }

    #[test]
    fn forward_orientation_decompresses_to_same_relation() {
        // Paper Table III: a1=[1,3], a2=[1,2], b1=Rel(a1, 0).
        let mut t = CompressedTable::new(Orientation::Forward, 2, 1, vec![3, 2, 3]);
        t.push_row(&[
            Cell::abs(1, 3),
            Cell::abs(1, 2),
            Cell::Rel {
                anchor: 0,
                delta: Interval::point(0),
            },
        ]);
        let full = t.decompress().unwrap();
        assert_eq!(full.out_arity(), 1);
        assert_eq!(full.in_arity(), 2);
        assert_eq!(
            full.row_set(),
            paper_table_ii().decompress().unwrap().row_set()
        );
    }

    #[test]
    fn generalized_table_refuses_decompression() {
        let mut t = CompressedTable::new(Orientation::Backward, 1, 1, vec![1, 4]);
        t.push_row(&[Cell::point(0), Cell::Sym { attr: 1 }]);
        assert_eq!(t.decompress(), Err(DslogError::NotInstantiated));
    }

    #[test]
    fn resolve_sym_uses_extent() {
        let t = CompressedTable::new(Orientation::Backward, 1, 1, vec![1, 4]);
        let ivl = t.resolve_cell(&Cell::Sym { attr: 1 }, &[0]);
        assert_eq!(ivl, Interval::new(0, 3));
    }

    #[test]
    fn rel_cell_resolution() {
        let t = paper_table_ii();
        let rel = Cell::Rel {
            anchor: 0,
            delta: Interval::new(-1, 1),
        };
        assert_eq!(t.resolve_cell(&rel, &[5]), Interval::new(4, 6));
    }
}
