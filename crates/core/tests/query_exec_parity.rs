//! Property-based parity suite for the indexed query engine: over
//! randomized compressed tables (both orientations, 1–3 hops, merge on and
//! off), [`QueryExec`] must agree exactly with the brute-force
//! `query::reference` oracle, the nested-loop scan ablation, and the
//! parallel execution path.

use dslog::provrc;
use dslog::query::{reference, QueryExec, QueryOptions};
use dslog::table::{BoxTable, CompressedTable, LineageTable, Orientation};
use proptest::prelude::*;
use std::collections::BTreeSet;

/// Grid dimension for every attribute (values are drawn from `0..DIM`).
const DIM: i64 = 5;

/// One randomized query scenario: a path of 2–4 spaces, one relation per
/// hop, a per-hop direction, and a seed choosing the query cells.
#[derive(Debug, Clone)]
struct Case {
    /// Attribute count of each space along the path.
    arities: Vec<usize>,
    /// `true` = backward hop (space i is the relation's out side).
    backward: Vec<bool>,
    /// One relation per hop, rows already truncated to the hop's arity.
    relations: Vec<Vec<Vec<i64>>>,
    /// Selects which space-0 cells are queried.
    seed: usize,
}

fn arb_case() -> impl Strategy<Value = Case> {
    (1usize..=3).prop_flat_map(|hops| {
        (
            prop::collection::vec(1usize..=2, hops + 1),
            prop::collection::vec(prop::bool::ANY, hops),
            // Rows are generated at the maximum arity (2 + 2) and truncated
            // per hop, so one homogeneous strategy serves every hop.
            prop::collection::vec(
                prop::collection::vec(prop::collection::vec(0i64..DIM, 4), 0..40),
                hops,
            ),
            0usize..3,
        )
            .prop_map(|(arities, backward, raw_rows, seed)| {
                let relations = raw_rows
                    .into_iter()
                    .enumerate()
                    .map(|(i, rows)| {
                        let (out_a, in_a) = hop_arities(&arities, &backward, i);
                        rows.into_iter()
                            .map(|r| r[..out_a + in_a].to_vec())
                            .collect()
                    })
                    .collect();
                Case {
                    arities,
                    backward,
                    relations,
                    seed,
                }
            })
    })
}

/// (out_arity, in_arity) of hop `i`'s relation. A backward hop stores
/// `R(space_i, space_{i+1})`; a forward hop stores `R(space_{i+1}, space_i)`.
fn hop_arities(arities: &[usize], backward: &[bool], i: usize) -> (usize, usize) {
    if backward[i] {
        (arities[i], arities[i + 1])
    } else {
        (arities[i + 1], arities[i])
    }
}

/// Build the uncompressed tables, the compressed tables (oriented so each
/// hop's primary side is its query side), and the reference hop list.
fn build(case: &Case) -> (Vec<LineageTable>, Vec<CompressedTable>) {
    let mut fulls = Vec::new();
    let mut compressed = Vec::new();
    for (i, rows) in case.relations.iter().enumerate() {
        let (out_a, in_a) = hop_arities(&case.arities, &case.backward, i);
        let mut t = LineageTable::new(out_a, in_a);
        for r in rows {
            t.push_row(r);
        }
        t.normalize();
        let orientation = if case.backward[i] {
            Orientation::Backward
        } else {
            Orientation::Forward
        };
        let c = provrc::compress(
            &t,
            &vec![DIM as usize; out_a],
            &vec![DIM as usize; in_a],
            orientation,
        );
        fulls.push(t);
        compressed.push(c);
    }
    (fulls, compressed)
}

/// Query cells: a deterministic subset of the space-0 cells that appear in
/// the first relation (so queries usually hit something).
fn query_cells(case: &Case, fulls: &[LineageTable]) -> Vec<Vec<i64>> {
    let t = &fulls[0];
    let side: BTreeSet<Vec<i64>> = t
        .rows()
        .map(|r| {
            if case.backward[0] {
                r[..t.out_arity()].to_vec()
            } else {
                r[t.out_arity()..].to_vec()
            }
        })
        .collect();
    side.into_iter()
        .enumerate()
        .filter(|(i, _)| (i + case.seed).is_multiple_of(3))
        .map(|(_, c)| c)
        .collect()
}

fn reference_result(case: &Case, fulls: &[LineageTable], cells: &[Vec<i64>]) -> BTreeSet<Vec<i64>> {
    let hops: Vec<(&LineageTable, reference::Direction)> = fulls
        .iter()
        .zip(&case.backward)
        .map(|(t, &b)| {
            (
                t,
                if b {
                    reference::Direction::Backward
                } else {
                    reference::Direction::Forward
                },
            )
        })
        .collect();
    reference::chain(&cells.iter().cloned().collect(), &hops)
}

fn run_chain(opts: QueryOptions, q: &BoxTable, tables: &[CompressedTable]) -> BoxTable {
    let refs: Vec<&CompressedTable> = tables.iter().collect();
    QueryExec::new(opts).chain(q, &refs).unwrap().0
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Indexed, merged execution equals the decompressed reference join.
    #[test]
    fn indexed_chain_matches_reference(case in arb_case()) {
        let (fulls, tables) = build(&case);
        let cells = query_cells(&case, &fulls);
        prop_assume!(!cells.is_empty());
        let q = BoxTable::from_cells(case.arities[0], &cells);
        let expected = reference_result(&case, &fulls, &cells);

        let got = run_chain(QueryOptions::default(), &q, &tables);
        prop_assert_eq!(got.cell_set(), expected);
    }

    /// The merge step is an optimization, not a semantics change: the
    /// indexed engine without inter-hop merging covers the same cell set.
    #[test]
    fn indexed_no_merge_matches_reference(case in arb_case()) {
        let (fulls, tables) = build(&case);
        let cells = query_cells(&case, &fulls);
        prop_assume!(!cells.is_empty());
        let q = BoxTable::from_cells(case.arities[0], &cells);
        let expected = reference_result(&case, &fulls, &cells);

        let got = run_chain(
            QueryOptions { merge: false, ..QueryOptions::default() },
            &q,
            &tables,
        );
        prop_assert_eq!(got.cell_set(), expected);
    }

    /// The index is a pure access-path change: with merging on, the probe
    /// path and the nested-loop scan produce bit-identical box tables.
    #[test]
    fn indexed_equals_scan_exactly(case in arb_case()) {
        let (fulls, tables) = build(&case);
        let cells = query_cells(&case, &fulls);
        prop_assume!(!cells.is_empty());
        let q = BoxTable::from_cells(case.arities[0], &cells);

        let indexed = run_chain(QueryOptions::default(), &q, &tables);
        let scan = run_chain(
            QueryOptions { use_index: false, ..QueryOptions::default() },
            &q,
            &tables,
        );
        prop_assert_eq!(indexed, scan);
        prop_assert_eq!(
            run_chain(
                QueryOptions { merge: false, ..QueryOptions::default() },
                &q,
                &tables,
            ).cell_set(),
            run_chain(
                QueryOptions { merge: false, use_index: false, ..QueryOptions::default() },
                &q,
                &tables,
            ).cell_set()
        );
    }

    /// Fanning a hop out over threads must be invisible: partial results
    /// are concatenated in box order, so even the un-merged box table is
    /// bit-identical to sequential execution.
    #[test]
    fn parallel_equals_sequential_exactly(case in arb_case()) {
        let (fulls, tables) = build(&case);
        let cells = query_cells(&case, &fulls);
        prop_assume!(!cells.is_empty());
        let q = BoxTable::from_cells(case.arities[0], &cells);

        let sequential = run_chain(
            QueryOptions { merge: false, parallel: false, ..QueryOptions::default() },
            &q,
            &tables,
        );
        let parallel = run_chain(
            QueryOptions { merge: false, parallel_threshold: 1, ..QueryOptions::default() },
            &q,
            &tables,
        );
        prop_assert_eq!(sequential, parallel);
    }
}
