//! Micro-benchmarks of ProvRC's internals: each compression stage, the
//! disk-format serializer, decompression, and the per-hop merge step —
//! the knobs DESIGN.md §3 calls out.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dslog::interval::Interval;
use dslog::provrc;
use dslog::storage::format;
use dslog::table::{BoxTable, LineageTable, Orientation};

/// Pure range pattern (aggregation): exercises step 1 almost exclusively.
fn range_pattern(n: usize) -> LineageTable {
    let mut t = LineageTable::new(1, 2);
    for i in 0..(n / 8).max(1) as i64 {
        for j in 0..8 {
            t.push_row(&[i, i, j]);
        }
    }
    t
}

/// Diagonal pattern (element-wise): compresses only via the relative
/// transformation of step 2.
fn diagonal_pattern(n: usize) -> LineageTable {
    let mut t = LineageTable::new(1, 1);
    for i in 0..n as i64 {
        t.push_row(&[i, i]);
    }
    t
}

/// Permutation (sort-like): the incompressible worst case.
fn permutation_pattern(n: usize) -> LineageTable {
    let n = n as i64;
    let mut t = LineageTable::new(1, 1);
    for i in 0..n {
        t.push_row(&[i, (i * 48271 + 13) % n]);
    }
    t
}

fn compress_stages(c: &mut Criterion) {
    let mut group = c.benchmark_group("provrc_compress");
    group.sample_size(10);
    let n = 20_000usize;
    for (name, table, out_shape, in_shape) in [
        ("range", range_pattern(n), vec![n / 8], vec![n / 8, 8]),
        ("diagonal", diagonal_pattern(n), vec![n], vec![n]),
        ("permutation", permutation_pattern(n), vec![n], vec![n]),
    ] {
        group.bench_with_input(BenchmarkId::new("backward", name), &table, |b, t| {
            b.iter(|| provrc::compress(t, &out_shape, &in_shape, Orientation::Backward))
        });
        group.bench_with_input(
            BenchmarkId::new("both_orientations", name),
            &table,
            |b, t| b.iter(|| provrc::compress_both(t, &out_shape, &in_shape)),
        );
    }
    group.finish();
}

fn roundtrip(c: &mut Criterion) {
    let mut group = c.benchmark_group("provrc_roundtrip");
    group.sample_size(10);
    let n = 20_000usize;
    for (name, table, out_shape, in_shape) in [
        ("diagonal", diagonal_pattern(n), vec![n], vec![n]),
        ("permutation", permutation_pattern(n), vec![n], vec![n]),
    ] {
        let compressed = provrc::compress(&table, &out_shape, &in_shape, Orientation::Backward);
        group.bench_with_input(BenchmarkId::new("serialize", name), &compressed, |b, t| {
            b.iter(|| format::serialize(t))
        });
        let bytes = format::serialize(&compressed);
        group.bench_with_input(BenchmarkId::new("deserialize", name), &bytes, |b, bytes| {
            b.iter(|| format::deserialize(bytes).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("decompress", name), &compressed, |b, t| {
            b.iter(|| t.decompress().unwrap())
        });
    }
    group.finish();
}

fn merge_step(c: &mut Criterion) {
    let mut group = c.benchmark_group("boxtable_merge");
    group.sample_size(10);
    for &n in &[1_000usize, 10_000] {
        // Adjacent unit boxes: the best case for merging (collapses to 1).
        let mut adjacent = BoxTable::new(1);
        for i in 0..n as i64 {
            adjacent.push_box(&[Interval::point(i)]);
        }
        group.bench_with_input(BenchmarkId::new("adjacent", n), &adjacent, |b, t| {
            b.iter_batched(
                || t.clone(),
                |mut t| {
                    t.merge();
                    t
                },
                criterion::BatchSize::SmallInput,
            )
        });

        // Scattered boxes: merging finds nothing but must still scan.
        let mut scattered = BoxTable::new(1);
        for i in 0..n as i64 {
            scattered.push_box(&[Interval::point(i * 3)]);
        }
        group.bench_with_input(BenchmarkId::new("scattered", n), &scattered, |b, t| {
            b.iter_batched(
                || t.clone(),
                |mut t| {
                    t.merge();
                    t
                },
                criterion::BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).warm_up_time(std::time::Duration::from_millis(500)).measurement_time(std::time::Duration::from_secs(2));
    targets = compress_stages, roundtrip, merge_step
}
criterion_main!(benches);
