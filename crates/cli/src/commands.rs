//! CLI subcommand implementations. Each returns the text to print so the
//! test suite can drive commands in-process.

use crate::csv;
use crate::opts::{parse_array_spec, parse_cells, Opts};
use dslog::api::{Dslog, TableCapture};
use dslog::net::{NetServer, ServeOptions};
use dslog::provrc;
use dslog::service::{AutoCommitPolicy, DslogService, IngestJob, MaintenancePolicy};
use dslog::storage::format as provrc_format;
use dslog::table::Orientation;
use dslog_baselines::all_formats;
use std::fmt::Write as _;
use std::time::Duration;

/// `dslog help`
pub fn help() -> String {
    "\
dslog — fine-grained array lineage storage, compression, and querying

USAGE:
  dslog ingest    --db DIR --in NAME:3x2 --out NAME:3 --csv FILE [--op NAME] [--gzip]
  dslog stats     --db DIR [--lazy]
  dslog query     --db DIR --path B,A --cells \"1;2;0\" [--no-merge] [--scan]
                  [--no-planner] [--stats] [--lazy] [--as-of GEN]
  dslog export    --db DIR --edge IN,OUT [--csv FILE]
  dslog db verify DIR
  dslog db history DIR
  dslog db compact DIR
  dslog compress  --csv FILE --out-arity N [--no-fast]
  dslog serve     --db DIR [--gzip] [--lazy] [--auto-commit-edges N]
                  [--auto-commit-ms MS] [--compact-every-gens N]
                  [--script FILE]
                  [--listen ADDR [--addr-file FILE] [--net-workers N]
                   [--net-queue-depth N] [--max-line-bytes N]]
  dslog client    --addr HOST:PORT [--script FILE] [--stats]
                  [--retries N] [--retry-ms MS]
  dslog help

A database is a directory of ProvRC-compressed lineage tables plus a
catalog. CSV relations have one row per lineage pair: output-cell indices
first, then input-cell indices (Figure 1B of the DSLog paper).

Query cells are `;`-separated, each a `,`-separated index tuple of the
first array on --path. The answer lists interval boxes over the last
array's axes.

Saves are atomic (temp-file + rename, catalog-last commit) and table
files are crc32-checksummed. `db verify` walks a database and exits
non-zero on any damage. `--lazy` opens in O(catalog), loading and
verifying each edge table on first use.

Every mutating operation is also appended to a crc-framed operation
log (`ops.log`) before the catalog rename. `db history` prints it
(who did what, when, at which generation). `query --as-of GEN` runs
against a retained historical generation reconstructed from the log
(by default only files the current catalog references survive a
commit; set DSLOG_WAL_RETAIN=N to keep the files of the last N prior
generations queryable).

`db compact` folds the one-file-per-edge-per-generation layout into a
few consolidated segment files plus a checksummed manifest of live
ranges, then sweeps superseded generation files (honoring the
retention window, so --as-of keeps working inside it). The catalog
rename stays the single commit point: a crash mid-compaction leaves
the previous generation intact. `serve --compact-every-gens N` runs
the same pass automatically after every N committed generations.

`compress` reports per-format sizes plus ProvRC throughput (rows/s and
raw MB/s); `--no-fast` swaps the columnar fast pipeline for the
row-of-structs ablation (bit-identical output, for benchmarking).

`serve` runs the concurrent ingest-while-query service on a command
stream (one command per line, from --script FILE or stdin):

  define NAME:3x2             define an array
  ingest IN OUT FILE.csv      compress + install one edge
  query  B,A 1;2              prov_query along a path
  query_batch B,A 1;2|0       |-separated queries in one shared sweep
  commit                      incremental commit to the database dir
  stats                       service counters
  history                     print the database's operation log
  quit                        stop (implied at end of stream)

`query` plans each path with the cost-based planner (empty-hop pruning,
selective-hop reordering, composite-edge reuse); --no-planner runs the
literal path order for ablation. --stats prints the planner decision
and per-hop probe counts.

Commits are incremental: only edges added or re-derived since the last
commit are written; everything else is re-referenced by the new
catalog generation. --auto-commit-edges N commits whenever N edges are
pending; --auto-commit-ms MS commits on a timer. Pending edges are
committed on shutdown even when a command fails. --gzip converts an
existing plain database to the gzip disk format on open.

With --listen ADDR, `serve` instead runs a TCP server (one request per
line, one JSON response line; same command set, but `ingest` takes
inline rows `0,1;1,2` instead of a CSV path, and `shutdown` stops the
server). Queries run against immutable epoch snapshots and never wait
on ingest or commit IO. --addr-file FILE writes the bound address (use
--listen 127.0.0.1:0 for an OS-assigned port); --net-workers,
--net-queue-depth, and --max-line-bytes bound concurrent sessions,
the admission queue, and request size. `client` connects to a serving
instance and forwards its command stream (--script FILE or stdin),
printing one response line per command; with --stats it upgrades
query/query_batch requests to their stats-carrying form so responses
include probe counts and the planner decision. A server at capacity
rejects new connections with `server busy`; --retries N retries such
rejections with jittered exponential backoff starting at --retry-ms
MS (default 100) before giving up.
"
    .to_string()
}

fn open_db(opts: &Opts) -> Result<Dslog, String> {
    let dir = opts.required("db")?;
    // One validated builder instead of picking a constructor per flag
    // combination: contradictions (e.g. --as-of with --lazy) surface as
    // one InvalidOptions error before any file IO.
    let mut options = Dslog::options().lazy(opts.switch("lazy"));
    if let Some(spec) = opts.optional("as-of") {
        let generation: u64 = spec
            .parse()
            .map_err(|_| "flag --as-of must be a generation number".to_string())?;
        options = options.as_of(generation);
    }
    options.open(dir).map_err(|e| format!("open {dir}: {e}"))
}

/// `dslog ingest`: add one CSV relation as an edge, creating or extending
/// the database directory.
pub fn ingest(args: &[String]) -> Result<String, String> {
    let opts = Opts::parse(args)?;
    let db_dir = opts.required("db")?;
    let (in_name, in_shape) = parse_array_spec(opts.required("in")?)?;
    let (out_name, out_shape) = parse_array_spec(opts.required("out")?)?;
    let csv_path = opts.required("csv")?;
    let gzip = opts.switch("gzip");

    let text = std::fs::read_to_string(csv_path).map_err(|e| format!("read {csv_path}: {e}"))?;
    let table = csv::parse(&text, out_shape.len(), in_shape.len())?;
    let n_rows = table.n_rows();
    let raw_bytes = table.nbytes();

    // Extend an existing database or start a fresh one. Fresh only when
    // no catalog exists — an IO error on an existing database must
    // propagate, not be shadowed by a new empty database whose save would
    // sweep the old snapshot's edge files.
    let mut db = if database_exists(db_dir) {
        Dslog::open(db_dir).map_err(|e| format!("open {db_dir}: {e}"))?
    } else {
        Dslog::new()
    };
    db.set_wal_actor("cli");
    db.define_array(&in_name, &in_shape)
        .map_err(|e| e.to_string())?;
    db.define_array(&out_name, &out_shape)
        .map_err(|e| e.to_string())?;
    db.add_lineage(&in_name, &out_name, &TableCapture::new(table))
        .map_err(|e| e.to_string())?;
    db.save(db_dir, gzip).map_err(|e| e.to_string())?;

    let stored = db
        .storage()
        .stored_table(&in_name, &out_name, Orientation::Backward)
        .map_err(|e| e.to_string())?;
    let compressed_bytes = if gzip {
        provrc_format::serialize_gzip(&stored).len()
    } else {
        provrc_format::serialize(&stored).len()
    };
    Ok(format!(
        "ingested {n_rows} lineage rows as edge {in_name} -> {out_name}\n\
         compressed {} rows, {raw_bytes} B raw -> {compressed_bytes} B on disk ({:.3}%)\n",
        stored.n_rows(),
        100.0 * compressed_bytes as f64 / raw_bytes.max(1) as f64
    ))
}

/// `dslog stats`: what the database holds.
pub fn stats(args: &[String]) -> Result<String, String> {
    let opts = Opts::parse(args)?;
    let db = open_db(&opts)?;
    let storage = db.storage();
    let mut out = String::new();
    let names = storage.array_names();
    writeln!(out, "{} array(s):", names.len()).unwrap();
    for name in &names {
        let meta = storage.array(name).map_err(|e| e.to_string())?;
        writeln!(out, "  {name}  shape {:?}", meta.shape).unwrap();
    }
    writeln!(
        out,
        "{} edge(s), {} B of compressed lineage on disk",
        storage.n_edges(),
        storage.storage_bytes()
    )
    .unwrap();
    Ok(out)
}

/// `dslog query`: forward/backward lineage along a path.
pub fn query(args: &[String]) -> Result<String, String> {
    let opts = Opts::parse(args)?;
    let db = open_db(&opts)?;
    let path_spec = opts.required("path")?;
    let path: Vec<&str> = path_spec.split(',').map(str::trim).collect();
    let cells = parse_cells(opts.required("cells")?)?;
    if cells.is_empty() {
        return Err("no query cells given".to_string());
    }

    let result = db
        .prov_query_opts(
            &path,
            &cells,
            dslog::query::QueryOptions {
                merge: !opts.switch("no-merge"),
                use_index: !opts.switch("scan"),
                use_planner: !opts.switch("no-planner"),
                ..dslog::query::QueryOptions::default()
            },
        )
        .map_err(|e| e.to_string())?;

    let mut out = String::new();
    writeln!(
        out,
        "{} box(es), {} cell(s), {} hop(s):",
        result.cells.n_boxes(),
        result.cells.volume(),
        result.hops
    )
    .unwrap();
    if opts.switch("stats") {
        let plan = result
            .stats
            .plan
            .as_ref()
            .map_or("off", |p| p.decision.label());
        writeln!(out, "  plan: {plan}").unwrap();
        for (i, h) in result.stats.hops.iter().enumerate() {
            writeln!(
                out,
                "  hop {i}: {} probed, {} matched, {} boxes, {:.2?} ({}, {} thread(s))",
                h.rows_probed,
                h.rows_matched,
                h.boxes_emitted,
                h.wall,
                if h.used_index { "indexed" } else { "scan" },
                h.threads
            )
            .unwrap();
        }
    }
    render_boxes(&mut out, &result.cells);
    Ok(out)
}

/// Append one `  (a, [b, c])` line per interval box.
fn render_boxes(out: &mut String, cells: &dslog::table::BoxTable) {
    for b in cells.boxes() {
        let dims: Vec<String> = b
            .iter()
            .map(|ivl| {
                if ivl.is_point() {
                    format!("{}", ivl.lo)
                } else {
                    format!("[{}, {}]", ivl.lo, ivl.hi)
                }
            })
            .collect();
        writeln!(out, "  ({})", dims.join(", ")).unwrap();
    }
}

/// `dslog export`: decompress one edge back to CSV (stdout or --csv FILE).
pub fn export(args: &[String]) -> Result<String, String> {
    let opts = Opts::parse(args)?;
    let db = open_db(&opts)?;
    let edge_spec = opts.required("edge")?;
    let (in_name, out_name) = edge_spec
        .split_once(',')
        .ok_or_else(|| format!("--edge `{edge_spec}` must be IN,OUT"))?;
    let stored = db
        .storage()
        .stored_table(in_name.trim(), out_name.trim(), Orientation::Backward)
        .map_err(|e| e.to_string())?;
    let table = stored.decompress().map_err(|e| e.to_string())?;
    let rendered = csv::render(&table);
    if let Some(path) = opts.optional("csv") {
        std::fs::write(path, &rendered).map_err(|e| format!("write {path}: {e}"))?;
        Ok(format!("wrote {} rows to {path}\n", table.n_rows()))
    } else {
        Ok(rendered)
    }
}

/// `dslog db <subcommand>`: database maintenance.
///
/// - `dslog db verify <dir>` — walk the catalog, re-read every referenced
///   table file, and check byte length, crc32, structural decode, and
///   orientation agreement. Errors (non-zero exit) on any damage.
/// - `dslog db history <dir>` — print the operation log: one line per
///   recorded operation (id, timestamp, actor, kind, generations), plus
///   a replay summary.
pub fn db(args: &[String]) -> Result<String, String> {
    let Some(sub) = args.first() else {
        return Err("usage: dslog db <verify|history|compact> <dir>".to_string());
    };
    match sub.as_str() {
        "verify" => {
            let dir = args
                .get(1)
                .ok_or_else(|| "usage: dslog db verify <dir>".to_string())?;
            if args.len() > 2 {
                return Err("db verify takes exactly one directory".to_string());
            }
            let report = dslog::storage::persist::verify(std::path::Path::new(dir))
                .map_err(|e| format!("verify {dir}: {e}"))?;
            let mut out = String::new();
            writeln!(
                out,
                "database OK: {} array(s), {} edge(s), {} table file(s) verified \
                 (catalog v{}, {}, {} log record(s))",
                report.n_arrays,
                report.n_edges,
                report.files_verified,
                report.catalog_version,
                if report.gzip { "gzip" } else { "plain" },
                report.log_records
            )
            .unwrap();
            if report.manifests_verified > 0 {
                writeln!(
                    out,
                    "{} compaction manifest(s) verified against their segments",
                    report.manifests_verified
                )
                .unwrap();
            }
            if report.retained_files > 0 {
                writeln!(
                    out,
                    "{} historical file(s) retained for time travel (--as-of)",
                    report.retained_files
                )
                .unwrap();
            }
            for name in &report.stale_files {
                writeln!(
                    out,
                    "warning: stale file {name} (crashed-save debris; next save sweeps it)"
                )
                .unwrap();
            }
            Ok(out)
        }
        "history" => {
            let dir = args
                .get(1)
                .ok_or_else(|| "usage: dslog db history <dir>".to_string())?;
            if args.len() > 2 {
                return Err("db history takes exactly one directory".to_string());
            }
            let path = std::path::Path::new(dir);
            if !path.is_dir() {
                return Err(format!("history {dir}: not a database directory"));
            }
            let records =
                dslog::storage::wal::history(path).map_err(|e| format!("history {dir}: {e}"))?;
            let mut out = String::new();
            for r in &records {
                writeln!(
                    out,
                    "#{} t={} {} {} gen {}->{}: {}",
                    r.op_id,
                    r.timestamp_ms,
                    r.actor,
                    r.kind.name(),
                    r.gen_before,
                    r.gen_after,
                    r.kind.describe()
                )
                .unwrap();
            }
            let state = dslog::storage::wal::replay(&records);
            writeln!(
                out,
                "{} record(s), {} commit(s); replay: {} array(s), {} edge(s) at generation {}",
                records.len(),
                state.commits,
                state.arrays.len(),
                state.edges.len(),
                state.generation
            )
            .unwrap();
            Ok(out)
        }
        "compact" => {
            let dir = args
                .get(1)
                .ok_or_else(|| "usage: dslog db compact <dir>".to_string())?;
            if args.len() > 2 {
                return Err("db compact takes exactly one directory".to_string());
            }
            // A lazy open binds the manager in O(catalog) without decoding
            // any table: compaction streams clean slots byte-for-byte.
            let db = Dslog::options()
                .lazy(true)
                .open(dir)
                .map_err(|e| format!("open {dir}: {e}"))?;
            db.set_wal_actor("cli");
            let report = db.compact().map_err(|e| format!("compact {dir}: {e}"))?;
            Ok(format!(
                "compacted to generation {}: {} edge file(s) folded into {} segment(s) \
                 ({} live range(s), {} B written)\n",
                report.generation,
                report.files_folded,
                report.segments_written,
                report.ranges,
                report.bytes_written
            ))
        }
        other => Err(format!("unknown db subcommand `{other}`; see `dslog help`")),
    }
}

/// `dslog serve`: run the concurrent ingest-while-query service over a
/// command stream (one command per line; `--script FILE` or stdin). See
/// [`help`] for the command grammar. Ingest batches compress with no
/// lock held and publish as new epoch snapshots, queries run wait-free
/// against the current snapshot, and commits are incremental against
/// the database directory's current generation. With `--listen ADDR`
/// the same service is exposed over TCP instead (see [`serve_listen`]).
pub fn serve(args: &[String]) -> Result<String, String> {
    let opts = Opts::parse(args)?;
    let db_dir = opts.required("db")?;
    let gzip = opts.switch("gzip");
    let lazy = opts.switch("lazy");
    let parse_u64 = |key: &str| -> Result<Option<u64>, String> {
        opts.optional(key)
            .map(|v| {
                v.parse()
                    .map_err(|_| format!("flag --{key} must be an integer"))
            })
            .transpose()
    };
    let policy = AutoCommitPolicy {
        edge_threshold: parse_u64("auto-commit-edges")?,
        interval: parse_u64("auto-commit-ms")?.map(Duration::from_millis),
    };
    let maintenance = MaintenancePolicy {
        auto_compact_generations: parse_u64("compact-every-gens")?,
    };

    // Open an existing database, or initialize (and bind) an empty one so
    // commits have a target from the start. Fresh-init happens ONLY when
    // no catalog exists: an IO error reading an existing database must
    // propagate, never be shadowed by an empty save (whose sweep would
    // delete the surviving edge files).
    let db = if database_exists(db_dir) {
        // --gzip is deliberately NOT passed to the builder here: for
        // `serve` it means "convert a plain database", not "insist the
        // catalog already is gzip" (which the builder would validate).
        let db = Dslog::options()
            .lazy(lazy)
            .maintenance(maintenance)
            .open(db_dir)
            .map_err(|e| format!("open {db_dir}: {e}"))?;
        // An existing plain database with an explicit --gzip is converted
        // (full re-save in the gzip format) so later commits honor the
        // requested mode; without the flag the catalog's mode wins.
        if gzip
            && db
                .bound_database()
                .is_some_and(|(_, bound_gzip, _)| !bound_gzip)
        {
            db.save(db_dir, true)
                .map_err(|e| format!("convert {db_dir} to gzip: {e}"))?;
        }
        db
    } else {
        Dslog::options()
            .gzip(gzip)
            .maintenance(maintenance)
            .create(db_dir)
            .map_err(|e| format!("initialize {db_dir}: {e}"))?
    };

    // Operation-log attribution: TCP sessions override this with their
    // peer address per command; the ticker tags its commits "auto-commit".
    db.set_wal_actor(if opts.optional("script").is_some() {
        "script"
    } else {
        "cli"
    });
    let service = DslogService::new(db, policy);
    if let Some(listen) = opts.optional("listen") {
        return serve_listen(&opts, service, listen);
    }
    let mut out = String::new();
    let stream_result = match opts.optional("script") {
        Some(path) => match std::fs::read_to_string(path) {
            Ok(text) => drive_serve(
                &service,
                text.lines().map(|l| Ok(l.to_string())),
                &mut out,
                false,
            ),
            Err(e) => Err(format!("read script {path}: {e}")),
        },
        None => {
            // Live mode: commands are executed as each stdin line arrives
            // (a long-lived pipe gets its responses immediately — the
            // stream is NOT buffered to EOF first), and each command's
            // output is printed and flushed on the spot.
            use std::io::BufRead as _;
            let stdin = std::io::stdin();
            drive_serve(&service, stdin.lock().lines(), &mut out, true)
        }
    };
    // Final commit of anything pending — even after a failed command, so
    // successfully ingested edges are never discarded — then report.
    let (db, final_commit) = service.shutdown().map_err(|e| format!("shutdown: {e}"))?;
    stream_result?;
    final_commit.map_err(|e| format!("final commit: {e}"))?;
    let generation = db
        .bound_database()
        .map_or(0, |(_, _, generation)| generation);
    writeln!(
        out,
        "serve done: {} array(s), {} edge(s) at generation {generation}",
        db.storage().array_names().len(),
        db.storage().n_edges()
    )
    .unwrap();
    Ok(out)
}

/// `dslog serve --listen`: run the TCP front-end until a client sends
/// `shutdown`, then final-commit and summarize. The bound address is
/// printed (and flushed) immediately — and optionally written to
/// `--addr-file` — so scripts binding port 0 can discover the real port.
fn serve_listen(opts: &Opts, service: DslogService, listen: &str) -> Result<String, String> {
    let parse_usize = |key: &str, default: usize| -> Result<usize, String> {
        opts.optional(key).map_or(Ok(default), |v| {
            v.parse()
                .map_err(|_| format!("flag --{key} must be an integer"))
        })
    };
    let defaults = ServeOptions::default();
    let net_opts = ServeOptions {
        workers: parse_usize("net-workers", defaults.workers)?,
        queue_depth: parse_usize("net-queue-depth", defaults.queue_depth)?,
        max_line_bytes: parse_usize("max-line-bytes", defaults.max_line_bytes)?,
        ..defaults
    };
    let service = std::sync::Arc::new(service);
    let server = NetServer::spawn(std::sync::Arc::clone(&service), listen, net_opts)
        .map_err(|e| format!("listen {listen}: {e}"))?;
    let addr = server.local_addr();
    {
        use std::io::Write as _;
        println!("listening on {addr}");
        let _ = std::io::stdout().flush();
    }
    if let Some(path) = opts.optional("addr-file") {
        std::fs::write(path, format!("{addr}\n")).map_err(|e| format!("write {path}: {e}"))?;
    }
    let net_stats = server.join();
    let service = std::sync::Arc::try_unwrap(service)
        .map_err(|_| "server threads still reference the service after join".to_string())?;
    let (db, final_commit) = service.shutdown().map_err(|e| format!("shutdown: {e}"))?;
    final_commit.map_err(|e| format!("final commit: {e}"))?;
    let generation = db
        .bound_database()
        .map_or(0, |(_, _, generation)| generation);
    Ok(format!(
        "serve done: {} array(s), {} edge(s) at generation {generation} \
         ({} connection(s), {} request(s), {} busy-rejected)\n",
        db.storage().array_names().len(),
        db.storage().n_edges(),
        net_stats.accepted,
        net_stats.requests,
        net_stats.rejected_busy
    ))
}

/// Exponential backoff with jitter for busy-rejected connections:
/// `base * 2^(attempt-1)` capped at 32x, half of it fixed and half
/// clock-derived jitter (sub-millisecond clock noise; the offline
/// dependency set has no RNG, and this is plenty to de-synchronize a
/// herd of retrying clients).
fn retry_backoff(base_ms: u64, attempt: u64) -> Duration {
    let step = base_ms
        .max(1)
        .saturating_mul(1u64 << attempt.saturating_sub(1).min(5));
    let nanos = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map_or(0, |d| u64::from(d.subsec_nanos()));
    Duration::from_millis(step / 2 + nanos % (step / 2).max(1))
}

/// `dslog client`: forward a command stream (one per line, from
/// `--script FILE` or stdin) to a serving instance and print each JSON
/// response line. Stops at end of stream or after `quit`/`shutdown`.
///
/// A server at capacity answers a new connection's first response with
/// `server busy ... retry later` and closes. With `--retries N` the
/// client retries such rejections up to N times with jittered
/// exponential backoff starting at `--retry-ms` (default 100).
/// Admission happens at most once per session: after any real response,
/// a transport error is fatal, never retried.
pub fn client(args: &[String]) -> Result<String, String> {
    use std::io::{BufRead as _, Write as _};
    let opts = Opts::parse(args)?;
    let addr = opts.required("addr")?;
    let parse_u64 = |key: &str, default: u64| -> Result<u64, String> {
        opts.optional(key).map_or(Ok(default), |v| {
            v.parse()
                .map_err(|_| format!("flag --{key} must be an integer"))
        })
    };
    let retries = parse_u64("retries", 0)?;
    let retry_ms = parse_u64("retry-ms", 100)?;
    let want_stats = opts.switch("stats");

    type Conn = (std::io::BufReader<std::net::TcpStream>, std::net::TcpStream);
    let connect = || -> Result<Conn, String> {
        let stream =
            std::net::TcpStream::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
        stream
            .set_read_timeout(Some(Duration::from_secs(60)))
            .map_err(|e| e.to_string())?;
        let writer = stream.try_clone().map_err(|e| e.to_string())?;
        Ok((std::io::BufReader::new(stream), writer))
    };
    let (mut reader, mut writer) = connect()?;
    // A busy rejection is always a connection's FIRST response (the
    // server sends it at accept time and closes); afterwards the session
    // is admitted for good. `admitted` gates the retry loop accordingly.
    let mut admitted = false;
    let mut attempt: u64 = 0;

    let mut roundtrip = |line: &str, out: &mut String| -> Result<bool, String> {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            return Ok(true);
        }
        // --stats upgrades plain query/query_batch requests to their
        // stats-carrying protocol form.
        let line = if want_stats
            && (line.starts_with("query ") || line.starts_with("query_batch "))
            && !line.ends_with(" stats")
        {
            format!("{line} stats")
        } else {
            line.to_string()
        };
        let line = line.as_str();
        loop {
            let sent = writer
                .write_all(format!("{line}\n").as_bytes())
                .map_err(|e| format!("send to {addr}: {e}"));
            let response = sent.and_then(|()| {
                let mut response = String::new();
                let n = reader
                    .read_line(&mut response)
                    .map_err(|e| format!("read from {addr}: {e}"))?;
                if n == 0 {
                    return Err(format!("{addr} closed the connection"));
                }
                Ok(response)
            });
            // Unadmitted connections retry busy rejections AND transport
            // errors (a busy server may reset the socket before its
            // rejection line is readable).
            let busy = match &response {
                Ok(r) => r.contains("server busy"),
                Err(_) => true,
            };
            if !admitted && busy && attempt < retries {
                attempt += 1;
                std::thread::sleep(retry_backoff(retry_ms, attempt));
                let (r, w) = connect()?;
                reader = r;
                writer = w;
                continue;
            }
            let response = response?;
            admitted = true;
            out.push_str(&response);
            return Ok(!matches!(line, "quit" | "exit" | "shutdown"));
        }
    };

    let mut out = String::new();
    match opts.optional("script") {
        Some(path) => {
            let text =
                std::fs::read_to_string(path).map_err(|e| format!("read script {path}: {e}"))?;
            for line in text.lines() {
                if !roundtrip(line, &mut out)? {
                    break;
                }
            }
        }
        None => {
            // Live mode: print each response as it arrives.
            let stdin = std::io::stdin();
            for line in stdin.lock().lines() {
                let line = line.map_err(|e| format!("read stdin: {e}"))?;
                let mut response = String::new();
                let more = roundtrip(&line, &mut response)?;
                print!("{response}");
                let _ = std::io::stdout().flush();
                if !more {
                    break;
                }
            }
        }
    }
    Ok(out)
}

/// Whether `db_dir` already holds a committed DSLog database (catalog
/// present). Used to decide between opening and fresh-initializing.
fn database_exists(db_dir: &str) -> bool {
    std::path::Path::new(db_dir).join("catalog.dsl").exists()
}

/// Feed a command stream to the service, one line at a time. In `live`
/// mode (stdin) each command's output is printed and flushed immediately
/// instead of being accumulated, so a long-lived session stays bounded
/// and responsive; script mode accumulates into `out` for the caller.
fn drive_serve(
    service: &DslogService,
    lines: impl Iterator<Item = std::io::Result<String>>,
    out: &mut String,
    live: bool,
) -> Result<(), String> {
    for (lineno, line) in lines.enumerate() {
        let line = line.map_err(|e| format!("read command stream: {e}"))?;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        match serve_command(service, line) {
            Ok(Some(text)) if live => {
                use std::io::Write as _;
                print!("{text}");
                let _ = std::io::stdout().flush();
            }
            Ok(Some(text)) => out.push_str(&text),
            Ok(None) => break,
            Err(e) => return Err(format!("serve line {}: {e}", lineno + 1)),
        }
    }
    Ok(())
}

/// Execute one `serve` stream command. `Ok(None)` means quit.
fn serve_command(service: &DslogService, line: &str) -> Result<Option<String>, String> {
    let mut parts = line.split_whitespace();
    let cmd = parts.next().expect("caller skips blank lines");
    let args: Vec<&str> = parts.collect();
    let mut out = String::new();
    match (cmd, args.as_slice()) {
        ("define", [spec]) => {
            let (name, shape) = parse_array_spec(spec)?;
            service
                .define_array(&name, &shape)
                .map_err(|e| e.to_string())?;
            writeln!(out, "defined {name} shape {shape:?}").unwrap();
        }
        ("ingest", [in_name, out_name, csv_path]) => {
            let (in_shape, out_shape) = service
                .with_db(|db| {
                    Ok::<_, dslog::DslogError>((
                        db.storage().array(in_name)?.shape.clone(),
                        db.storage().array(out_name)?.shape.clone(),
                    ))
                })
                .map_err(|e| e.to_string())?;
            let text =
                std::fs::read_to_string(csv_path).map_err(|e| format!("read {csv_path}: {e}"))?;
            let table = csv::parse(&text, out_shape.len(), in_shape.len())?;
            let report = service
                .ingest_batch(vec![IngestJob::new(*in_name, *out_name, table)])
                .map_err(|e| e.to_string())?;
            writeln!(
                out,
                "ingested {} row(s) as edge {in_name} -> {out_name} ({} pending)",
                report.rows, report.pending_edges
            )
            .unwrap();
            match report.auto_commit {
                Some(Ok(commit)) => writeln!(
                    out,
                    "auto-committed generation {} ({} written, {} reused)",
                    commit.generation, commit.files_written, commit.files_reused
                )
                .unwrap(),
                Some(Err(e)) => {
                    writeln!(out, "warning: auto-commit failed ({e}); edges stay pending").unwrap()
                }
                None => {}
            }
        }
        ("query", [path_spec, cells_spec]) => {
            let path: Vec<&str> = path_spec.split(',').map(str::trim).collect();
            let cells = parse_cells(cells_spec)?;
            if cells.is_empty() {
                return Err("no query cells given".to_string());
            }
            let result = service.query(&path, &cells).map_err(|e| e.to_string())?;
            writeln!(
                out,
                "{} box(es), {} cell(s), {} hop(s):",
                result.cells.n_boxes(),
                result.cells.volume(),
                result.hops
            )
            .unwrap();
            render_boxes(&mut out, &result.cells);
        }
        ("query_batch", [path_spec, queries_spec]) => {
            let path: Vec<&str> = path_spec.split(',').map(str::trim).collect();
            let mut queries = Vec::new();
            for spec in queries_spec.split('|') {
                let cells = parse_cells(spec)?;
                if cells.is_empty() {
                    return Err("empty query in batch".to_string());
                }
                queries.push(cells);
            }
            let results = service
                .query_batch(&path, &queries)
                .map_err(|e| e.to_string())?;
            for (q, result) in results.iter().enumerate() {
                writeln!(
                    out,
                    "query {q}: {} box(es), {} cell(s):",
                    result.cells.n_boxes(),
                    result.cells.volume(),
                )
                .unwrap();
                render_boxes(&mut out, &result.cells);
            }
        }
        ("commit", []) => {
            let report = service.commit().map_err(|e| e.to_string())?;
            writeln!(
                out,
                "committed generation {} ({}: {} written, {} reused, {} B)",
                report.generation,
                if report.incremental {
                    "incremental"
                } else {
                    "full"
                },
                report.files_written,
                report.files_reused,
                report.bytes_written
            )
            .unwrap();
        }
        ("stats", []) => {
            let s = service.stats();
            writeln!(
                out,
                "{} array(s), {} edge(s), {} pending; {} ingested, {} query(ies), \
                 {} commit(s) ({} auto, {} failed), generation {}",
                s.arrays,
                s.edges,
                s.pending_edges,
                s.edges_ingested,
                s.queries,
                s.commits,
                s.auto_commits,
                s.failed_commits,
                s.generation
                    .map_or("unbound".to_string(), |g| g.to_string())
            )
            .unwrap();
            if let Some(err) = &s.last_commit_error {
                writeln!(out, "warning: last commit failed: {err}").unwrap();
            }
        }
        ("history", []) => {
            let records = service.history().map_err(|e| e.to_string())?;
            for r in &records {
                writeln!(
                    out,
                    "#{} {} {} gen {}->{}: {}",
                    r.op_id,
                    r.actor,
                    r.kind.name(),
                    r.gen_before,
                    r.gen_after,
                    r.kind.describe()
                )
                .unwrap();
            }
            writeln!(out, "{} record(s)", records.len()).unwrap();
        }
        ("quit" | "exit", []) => return Ok(None),
        _ => return Err(format!("bad serve command `{line}`; see `dslog help`")),
    }
    Ok(Some(out))
}

/// `dslog compress`: compare every storage format on a CSV relation and
/// report ProvRC compression throughput. `--no-fast` selects the
/// row-of-structs ablation pipeline (bit-identical output, for
/// benchmarking the columnar pipeline against its reference).
pub fn compress(args: &[String]) -> Result<String, String> {
    let opts = Opts::parse(args)?;
    let csv_path = opts.required("csv")?;
    let out_arity = opts.required_usize("out-arity")?;
    let no_fast = opts.switch("no-fast");
    let text = std::fs::read_to_string(csv_path).map_err(|e| format!("read {csv_path}: {e}"))?;

    // Infer total arity from the first data row.
    let arity = text
        .lines()
        .map(str::trim)
        .find(|l| !l.is_empty() && !l.starts_with('#'))
        .ok_or("empty CSV")?
        .split(',')
        .count();
    if out_arity == 0 || out_arity >= arity {
        return Err(format!(
            "--out-arity {out_arity} impossible for {arity}-column rows"
        ));
    }
    let table = csv::parse(&text, out_arity, arity - out_arity)?;

    // Shapes for ProvRC: tight bounding extents of the observed indices.
    let mut extents = vec![1i64; arity];
    for row in table.rows() {
        for (e, &v) in extents.iter_mut().zip(row) {
            *e = (*e).max(v + 1);
        }
    }
    let out_shape: Vec<usize> = extents[..out_arity].iter().map(|&e| e as usize).collect();
    let in_shape: Vec<usize> = extents[out_arity..].iter().map(|&e| e as usize).collect();

    let raw_bytes = table.nbytes();
    let mut rows: Vec<(String, usize)> = all_formats()
        .iter()
        .map(|f| (f.name().to_string(), f.encode(&table).len()))
        .collect();
    let compress_opts = provrc::CompressOptions {
        fast: !no_fast,
        ..provrc::CompressOptions::default()
    };
    let start = std::time::Instant::now();
    let provrc_table = provrc::compress_opts(
        &table,
        &out_shape,
        &in_shape,
        Orientation::Backward,
        compress_opts,
    );
    let compress_secs = start.elapsed().as_secs_f64().max(1e-9);
    rows.push((
        "ProvRC".to_string(),
        provrc_format::serialize(&provrc_table).len(),
    ));
    rows.push((
        "ProvRC-GZip".to_string(),
        provrc_format::serialize_gzip(&provrc_table).len(),
    ));

    let mut out = String::new();
    writeln!(
        out,
        "{} rows, {} output + {} input attributes, {raw_bytes} B raw",
        table.n_rows(),
        out_arity,
        arity - out_arity
    )
    .unwrap();
    writeln!(
        out,
        "ProvRC ({} pipeline): {} -> {} rows in {:.3}ms ({:.3e} rows/s, {:.1} MB/s raw)\n",
        if no_fast { "ablation" } else { "fast" },
        table.n_rows(),
        provrc_table.n_rows(),
        compress_secs * 1e3,
        table.n_rows() as f64 / compress_secs,
        raw_bytes as f64 / 1_048_576.0 / compress_secs,
    )
    .unwrap();
    writeln!(out, "{:<14} {:>12} {:>10}", "format", "bytes", "% of raw").unwrap();
    for (name, bytes) in rows {
        writeln!(
            out,
            "{name:<14} {bytes:>12} {:>10.4}",
            100.0 * bytes as f64 / raw_bytes.max(1) as f64
        )
        .unwrap();
    }
    Ok(out)
}
