//! # DSLog — fine-grained array lineage storage, compression, and querying
//!
//! A from-scratch Rust implementation of the system described in
//! *"Compression and In-Situ Query Processing for Fine-Grained Array
//! Lineage"* (Zhao & Krishnan, ICDE 2024).
//!
//! DSLog stores cell-level lineage relations between multidimensional
//! arrays, compresses them with the **ProvRC** algorithm ([`provrc`]),
//! answers forward and backward lineage queries **in situ** over the
//! compressed form ([`query`]), and **reuses** lineage across repeated
//! operation calls via operation signatures and index reshaping
//! ([`reuse`], [`provrc::reshape`]).
//!
//! ## Quick start
//!
//! ```
//! use dslog::api::{Dslog, TableCapture};
//! use dslog::table::LineageTable;
//!
//! let mut db = Dslog::new();
//! db.define_array("A", &[3, 2]).unwrap();
//! db.define_array("B", &[3]).unwrap();
//!
//! // Lineage of B = A.sum(axis=1): B[i] <- A[i, 0], A[i, 1].
//! let mut lineage = LineageTable::new(1, 2);
//! for i in 0..3 {
//!     for j in 0..2 {
//!         lineage.push_row(&[i, i, j]);
//!     }
//! }
//! db.register_operation(
//!     "sum_axis1",
//!     &["A"],
//!     &["B"],
//!     vec![Box::new(TableCapture::new(lineage))],
//!     &[],
//!     false,
//! )
//! .unwrap();
//!
//! // Backward query: which cells of A contributed to B[1]?
//! let result = db.prov_query(&["B", "A"], &[vec![1]]).unwrap();
//! assert!(result.cells.contains_cell(&[1, 0]));
//! assert!(result.cells.contains_cell(&[1, 1]));
//! assert!(!result.cells.contains_cell(&[0, 0]));
//! ```

#![forbid(unsafe_code)]

pub mod api;
pub mod error;
pub mod interval;
pub mod net;
pub mod provrc;
pub mod query;
pub mod reuse;
pub mod service;
pub mod storage;
pub mod table;

pub use api::{Dslog, DslogConfig, OpenOptions};
pub use error::{DslogError, Result};
pub use interval::Interval;
pub use service::MaintenancePolicy;
pub use table::{BoxTable, Cell, CompressedTable, LineageTable, Orientation};
